//! Flow-wide resilience: divergence signals, trust-region recovery policy,
//! stage checkpoints, wall-clock budgets and structured degradation
//! reports.
//!
//! The WA wirelength model is only conditionally stable — its exponent
//! stabilization keeps a *single* evaluation finite, but an aggressive
//! penalty schedule can still drive the iterate itself to a non-finite
//! point. Pre-resilience, the flow had no answer to that except undefined
//! behavior downstream (NaN positions poisoning the density grid, sorts
//! panicking in the legalizer). This module defines the contract that
//! replaces it:
//!
//! 1. **Divergence is a signal, not an abort.** The optimizer surfaces a
//!    recoverable [`Diverged`] value carrying the best completed outcome;
//!    the model is guaranteed to hold its last *finite* iterate.
//! 2. **Every stage checkpoints.** The placer snapshots the best feasible
//!    placement per stage into a [`FlowCheckpoint`]; a downstream failure
//!    rolls back to it and reports a [`DegradedResult`] instead of
//!    returning nothing.
//! 3. **Budgets truncate cleanly.** A [`FlowBudget`] (and the router's
//!    `RouterConfig::time_budget`) turns "took too long" into "stop here
//!    and keep what we have", with the truncation recorded as a
//!    [`RecoveryEvent`].
//!
//! Recovery decisions are made exclusively on the orchestrating thread at
//! deterministic points of the schedule, so the bitwise thread-count
//! invariance of the parallel kernels is preserved: a degraded run at 1
//! thread is bitwise identical to the same degraded run at 8.

use rdp_db::Placement;
use std::fmt;
use std::time::{Duration, Instant};

/// Trust-region-style recovery policy applied when a global-placement
/// iteration produces a non-finite wirelength or gradient.
///
/// On divergence the optimizer restores the last finite iterate, shrinks
/// the step length by [`RecoveryPolicy::step_shrink`] and retries; the WA
/// stability shift (the per-net max/min exponent anchor) is re-derived
/// automatically from the restored coordinates on the next evaluation.
/// After [`RecoveryPolicy::max_retries`] failed retries the stage surfaces
/// [`Diverged`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Restore-and-retry attempts per GP stage before giving up.
    pub max_retries: usize,
    /// Step-length multiplier applied at each retry (`0.5` halves the
    /// trust region).
    pub step_shrink: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_retries: 4, step_shrink: 0.5 }
    }
}

/// A global-placement stage exhausted its recovery retries.
///
/// This is a *recoverable* error: the model it was raised from is left at
/// its last finite iterate, and [`Diverged::best`] summarizes the last
/// completed penalty round, so callers can continue the flow from a
/// degraded-but-usable state.
#[derive(Debug, Clone, PartialEq)]
pub struct Diverged {
    /// The stage label that diverged (e.g. `"gp/final"`).
    pub stage: String,
    /// Penalty (outer) round the divergence occurred in.
    pub outer: usize,
    /// Recovery retries spent before giving up.
    pub retries: usize,
    /// Outcome of the last completed round.
    pub best: crate::optimizer::GpOutcome,
}

impl fmt::Display for Diverged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "global placement diverged in stage `{}` (outer round {}, after {} recovery retries)",
            self.stage, self.outer, self.retries
        )
    }
}

impl std::error::Error for Diverged {}

/// One recovery action taken by the resilience layer, recorded into
/// [`crate::Trace::events`] (and mirrored into the stage CSV as
/// zero-duration `recovery/...` rows) so degraded runs are observable.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// The optimizer restored the last finite iterate and shrank its step.
    StepHalved {
        /// GP stage label.
        stage: String,
        /// Outer round of the recovery.
        outer: usize,
        /// Step scale in effect after the shrink.
        scale: f64,
    },
    /// A GP stage exhausted its retries and surfaced [`Diverged`].
    GpDiverged {
        /// GP stage label.
        stage: String,
        /// Retries spent.
        retries: usize,
    },
    /// A stage snapshotted its placement as the new best checkpoint.
    CheckpointSaved {
        /// Checkpoint stage label.
        stage: String,
        /// HPWL of the snapshot.
        hpwl: f64,
    },
    /// A downstream failure rolled the placement back to a checkpoint.
    CheckpointRestored {
        /// The stage that failed.
        failed_stage: String,
        /// The checkpoint stage restored from.
        from: String,
    },
    /// A wall-clock budget expired and the flow truncated cleanly.
    BudgetTruncated {
        /// Budget scope (`"flow"`, `"inflation"`).
        scope: String,
        /// Round (or stage ordinal) the truncation hit.
        at_round: usize,
    },
    /// The routability loop fell back from router-driven congestion to the
    /// probabilistic estimator (router budget blown, or corrupt grid
    /// state detected and discarded).
    CongestionFallback {
        /// Inflation round of the fallback.
        round: usize,
        /// Why (`"router budget"`, `"corrupt grid"`).
        reason: String,
    },
}

impl RecoveryEvent {
    /// Short machine-readable kind tag (used in CSV output).
    pub fn kind(&self) -> &'static str {
        match self {
            RecoveryEvent::StepHalved { .. } => "step_halved",
            RecoveryEvent::GpDiverged { .. } => "gp_diverged",
            RecoveryEvent::CheckpointSaved { .. } => "checkpoint_saved",
            RecoveryEvent::CheckpointRestored { .. } => "checkpoint_restored",
            RecoveryEvent::BudgetTruncated { .. } => "budget_truncated",
            RecoveryEvent::CongestionFallback { .. } => "congestion_fallback",
        }
    }

    /// `(stage, detail)` columns for CSV output.
    pub fn csv_fields(&self) -> (String, String) {
        match self {
            RecoveryEvent::StepHalved { stage, outer, scale } => {
                (stage.clone(), format!("outer={outer} scale={scale}"))
            }
            RecoveryEvent::GpDiverged { stage, retries } => {
                (stage.clone(), format!("retries={retries}"))
            }
            RecoveryEvent::CheckpointSaved { stage, hpwl } => {
                (stage.clone(), format!("hpwl={hpwl:.3}"))
            }
            RecoveryEvent::CheckpointRestored { failed_stage, from } => {
                (failed_stage.clone(), format!("restored-from={from}"))
            }
            RecoveryEvent::BudgetTruncated { scope, at_round } => {
                (scope.clone(), format!("at-round={at_round}"))
            }
            RecoveryEvent::CongestionFallback { round, reason } => {
                (format!("inflate{round}"), reason.clone())
            }
        }
    }
}

/// Snapshot of the best placement a pipeline stage produced, kept so any
/// downstream failure can roll back instead of aborting — and, since the
/// serve layer, so a killed run can **resume** from its last completed
/// stage via [`crate::Placer::resume_from`].
///
/// Checkpoint granularity is *one per completed stage, latest wins*: the
/// flow is monotonic (each stage starts from the previous one's output),
/// so the most recent feasible snapshot is also the best one.
///
/// The snapshot captures everything the flow mutates across stage
/// boundaries: the placement itself (positions + orientations) and the
/// per-object *density areas* (cell inflation is cumulative across
/// routability rounds, so areas are state, not derivable from the
/// placement). Together with `rounds_done` this is sufficient to restart
/// the pipeline bitwise-exactly in estimator-congestion mode; the
/// router-congestion mode additionally carries warm routing state that is
/// *not* checkpointed, so a resumed router-mode run re-routes from scratch
/// and may legitimately differ from the uninterrupted one.
#[derive(Debug, Clone)]
pub struct FlowCheckpoint {
    /// Stage that produced the snapshot (`"global_place"`, `"inflate2"`,
    /// `"legalize"`).
    pub stage: String,
    /// The placement snapshot.
    pub placement: Placement,
    /// HPWL at the snapshot.
    pub hpwl: f64,
    /// Whether the snapshot passed legalization (pre-legalization
    /// checkpoints are feasible but not row-legal). A resume from a legal
    /// checkpoint skips straight to detailed placement.
    pub legal: bool,
    /// Density area per *model object* (movable nodes in design order) at
    /// the snapshot — the cumulative result of the inflation rounds run so
    /// far.
    pub density_area: Vec<f64>,
    /// Routability rounds completed at the snapshot; a resume re-enters
    /// the inflation loop at this round index.
    pub rounds_done: usize,
    /// Global-placement outcome at the snapshot (carried into the resumed
    /// run's [`crate::PlaceResult`]).
    pub gp: crate::optimizer::GpOutcome,
}

/// Error parsing a serialized [`FlowCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointParseError(pub String);

impl fmt::Display for CheckpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointParseError {}

fn parse_bits(s: &str, what: &str) -> Result<f64, CheckpointParseError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointParseError(format!("bad {what} bits `{s}`")))
}

impl FlowCheckpoint {
    /// Serializes the checkpoint as a line-oriented text block.
    ///
    /// Floats are written as hexadecimal IEEE-754 bit patterns, so a
    /// round-trip through [`FlowCheckpoint::from_text`] is **bitwise
    /// lossless** — the property the resume-determinism contract rests on.
    /// No external serializer is involved (the workspace builds offline).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.placement.len() * 40);
        out.push_str("rdp-checkpoint v1\n");
        out.push_str(&format!("stage {}\n", self.stage));
        out.push_str(&format!("legal {}\n", u8::from(self.legal)));
        out.push_str(&format!("rounds_done {}\n", self.rounds_done));
        out.push_str(&format!("hpwl {:016x}\n", self.hpwl.to_bits()));
        out.push_str(&format!(
            "gp {:016x} {} {:016x} {} {}\n",
            self.gp.overflow_ratio.to_bits(),
            self.gp.outer_rounds,
            self.gp.smooth_wl.to_bits(),
            self.gp.recoveries,
            self.gp.gradient_evals,
        ));
        out.push_str(&format!("nodes {}\n", self.placement.len()));
        for (i, c) in self.placement.centers().iter().enumerate() {
            let orient = self.placement.orient(rdp_db::NodeId::from_index(i));
            out.push_str(&format!(
                "{:016x} {:016x} {}\n",
                c.x.to_bits(),
                c.y.to_bits(),
                orient.as_str()
            ));
        }
        out.push_str(&format!("areas {}\n", self.density_area.len()));
        for a in &self.density_area {
            out.push_str(&format!("{:016x}\n", a.to_bits()));
        }
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint serialized by [`FlowCheckpoint::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointParseError`] on any structural or lexical
    /// mismatch (a truncated file from a crashed writer parses as an
    /// error, never as a silently shorter checkpoint).
    pub fn from_text(text: &str) -> Result<Self, CheckpointParseError> {
        let mut lines = text.lines();
        let mut next = |what: &str| {
            lines
                .next()
                .ok_or_else(|| CheckpointParseError(format!("truncated before {what}")))
        };
        if next("header")? != "rdp-checkpoint v1" {
            return Err(CheckpointParseError("bad header".into()));
        }
        let field = |line: &str, key: &str| -> Result<String, CheckpointParseError> {
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| CheckpointParseError(format!("expected `{key}`, got `{line}`")))
        };
        let stage = field(next("stage")?, "stage")?;
        let legal = match field(next("legal")?, "legal")?.as_str() {
            "0" => false,
            "1" => true,
            other => return Err(CheckpointParseError(format!("bad legal flag `{other}`"))),
        };
        let rounds_done = field(next("rounds_done")?, "rounds_done")?
            .parse::<usize>()
            .map_err(|_| CheckpointParseError("bad rounds_done".into()))?;
        let hpwl = parse_bits(&field(next("hpwl")?, "hpwl")?, "hpwl")?;
        let gp_line = field(next("gp")?, "gp")?;
        let gp_parts: Vec<&str> = gp_line.split_whitespace().collect();
        if gp_parts.len() != 5 {
            return Err(CheckpointParseError(format!("bad gp line `{gp_line}`")));
        }
        let parse_count = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|_| CheckpointParseError(format!("bad {what} `{s}`")))
        };
        let gp = crate::optimizer::GpOutcome {
            overflow_ratio: parse_bits(gp_parts[0], "overflow_ratio")?,
            outer_rounds: parse_count(gp_parts[1], "outer_rounds")?,
            smooth_wl: parse_bits(gp_parts[2], "smooth_wl")?,
            recoveries: parse_count(gp_parts[3], "recoveries")?,
            gradient_evals: parse_count(gp_parts[4], "gradient_evals")?,
        };
        let num_nodes = parse_count(&field(next("nodes")?, "nodes")?, "node count")?;
        let mut centers = Vec::with_capacity(num_nodes);
        let mut orients = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            let line = next("node line")?;
            let mut it = line.split_whitespace();
            let (Some(x), Some(y), Some(o), None) = (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(CheckpointParseError(format!("bad node line {i}: `{line}`")));
            };
            centers.push(rdp_geom::Point::new(
                parse_bits(x, "node x")?,
                parse_bits(y, "node y")?,
            ));
            orients.push(
                o.parse::<rdp_geom::Orient>()
                    .map_err(|e| CheckpointParseError(format!("bad orient: {e}")))?,
            );
        }
        let num_areas = parse_count(&field(next("areas")?, "areas")?, "area count")?;
        let mut density_area = Vec::with_capacity(num_areas);
        for _ in 0..num_areas {
            density_area.push(parse_bits(next("area line")?, "area")?);
        }
        if next("end")? != "end" {
            return Err(CheckpointParseError("missing end marker".into()));
        }
        Ok(FlowCheckpoint {
            stage,
            placement: Placement::from_parts(centers, orients),
            hpwl,
            legal,
            density_area,
            rounds_done,
            gp,
        })
    }
}

/// Structured report attached to a [`crate::PlaceResult`] whose flow
/// degraded (divergence, rollback or budget truncation) instead of
/// completing cleanly.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedResult {
    /// The first stage that degraded.
    pub stage: String,
    /// Checkpoint stage the flow rolled back to, if a rollback happened.
    pub restored_from: Option<String>,
    /// Every recovery event of the run, in order.
    pub events: Vec<RecoveryEvent>,
}

/// Wall-clock budgets of a placement run. `None` fields are unlimited
/// (the default), so the resilience layer is inert unless opted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowBudget {
    /// Budget for the whole flow. When it expires, optional stages still
    /// ahead (routability rounds, detailed placement) are skipped — the
    /// degradation ladder drops trailing quality stages first and never
    /// skips legalization.
    pub flow_wall: Option<Duration>,
    /// Budget for the routability (inflation) loop alone. Expiry truncates
    /// the remaining rounds and the flow proceeds to legalization.
    pub inflation_wall: Option<Duration>,
}

/// A started wall-clock budget.
#[derive(Debug, Clone, Copy)]
pub struct BudgetClock {
    start: Instant,
    limit: Option<Duration>,
}

impl BudgetClock {
    /// Starts the clock; `limit == None` never exhausts.
    pub fn new(limit: Option<Duration>) -> Self {
        BudgetClock { start: Instant::now(), limit }
    }

    /// Whether the budget has been spent.
    pub fn exhausted(&self) -> bool {
        self.limit.is_some_and(|l| self.start.elapsed() >= l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_clock_never_exhausts() {
        let c = BudgetClock::new(None);
        assert!(!c.exhausted());
    }

    #[test]
    fn zero_budget_exhausts_immediately() {
        let c = BudgetClock::new(Some(Duration::ZERO));
        assert!(c.exhausted());
    }

    #[test]
    fn event_kinds_and_fields() {
        let e = RecoveryEvent::StepHalved { stage: "gp/final".into(), outer: 3, scale: 0.25 };
        assert_eq!(e.kind(), "step_halved");
        let (stage, detail) = e.csv_fields();
        assert_eq!(stage, "gp/final");
        assert!(detail.contains("outer=3"));
        let e = RecoveryEvent::CongestionFallback { round: 1, reason: "router budget".into() };
        assert_eq!(e.csv_fields().0, "inflate1");
    }

    #[test]
    fn checkpoint_text_round_trip_is_bitwise_lossless() {
        use rdp_geom::{Orient, Point};
        let placement = Placement::from_parts(
            vec![
                Point::new(1.5, -2.25),
                Point::new(f64::from_bits(0x3ff0000000000001), 0.1 + 0.2),
            ],
            vec![Orient::N, Orient::FS],
        );
        let cp = FlowCheckpoint {
            stage: "inflate1".into(),
            placement,
            hpwl: 12345.678,
            legal: false,
            density_area: vec![2.0, 3.75],
            rounds_done: 2,
            gp: crate::optimizer::GpOutcome {
                overflow_ratio: 0.0875,
                outer_rounds: 9,
                smooth_wl: 4567.0,
                recoveries: 1,
                gradient_evals: 321,
            },
        };
        let text = cp.to_text();
        let back = FlowCheckpoint::from_text(&text).unwrap();
        assert_eq!(back.stage, cp.stage);
        assert_eq!(back.legal, cp.legal);
        assert_eq!(back.rounds_done, cp.rounds_done);
        assert_eq!(back.hpwl.to_bits(), cp.hpwl.to_bits());
        assert_eq!(back.gp, cp.gp);
        assert_eq!(back.placement.len(), cp.placement.len());
        for i in 0..cp.placement.len() {
            let id = rdp_db::NodeId::from_index(i);
            let (a, b) = (cp.placement.center(id), back.placement.center(id));
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(cp.placement.orient(id), back.placement.orient(id));
        }
        assert_eq!(
            cp.density_area.iter().map(|a| a.to_bits()).collect::<Vec<_>>(),
            back.density_area.iter().map(|a| a.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn checkpoint_parse_rejects_garbage_and_truncation() {
        assert!(FlowCheckpoint::from_text("").is_err());
        assert!(FlowCheckpoint::from_text("not a checkpoint\n").is_err());
        let cp = FlowCheckpoint {
            stage: "global_place".into(),
            placement: Placement::from_parts(
                vec![rdp_geom::Point::new(1.0, 2.0)],
                vec![rdp_geom::Orient::N],
            ),
            hpwl: 1.0,
            legal: true,
            density_area: vec![1.0],
            rounds_done: 0,
            gp: crate::optimizer::GpOutcome {
                overflow_ratio: 0.1,
                outer_rounds: 1,
                smooth_wl: 1.0,
                recoveries: 0,
                gradient_evals: 1,
            },
        };
        let text = cp.to_text();
        // A truncated file (crashed writer) must fail loudly, not parse as
        // a shorter checkpoint.
        for cut in [10, text.len() / 2, text.len() - 2] {
            assert!(
                FlowCheckpoint::from_text(&text[..cut]).is_err(),
                "truncation at {cut} parsed"
            );
        }
    }

    #[test]
    fn diverged_renders() {
        let d = Diverged {
            stage: "gp/final".into(),
            outer: 2,
            retries: 4,
            best: crate::optimizer::GpOutcome {
                overflow_ratio: 0.5,
                outer_rounds: 2,
                smooth_wl: 1.0,
                recoveries: 4,
                gradient_evals: 17,
            },
        };
        assert!(d.to_string().contains("gp/final"));
        assert!(d.to_string().contains("4 recovery retries"));
    }
}
