//! Fence-region pull-in force.
//!
//! The region-aware density fields keep a fenced object's *spreading*
//! inside its fence, but an object that wanders far outside the fence's
//! bins sees no density gradient at all. The pull-in force closes that
//! gap: any fenced object outside its region feels a quadratic attraction
//! toward the closest point of the fence, scaled with the same λ schedule
//! as the density force so it strengthens as placement converges — the
//! hierarchy-handling recipe of the paper.

use crate::model::Model;
use rdp_db::Region;
use rdp_geom::Point;

/// Adds `weight · ∂/∂pos Σ dist(pos, fence)²` for every fenced object into
/// `grad_x`/`grad_y`. Objects inside their fence get no force.
pub fn fence_grad(
    model: &Model,
    regions: &[Region],
    weight: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) {
    if regions.is_empty() || weight == 0.0 {
        return;
    }
    for i in 0..model.len() {
        let Some(region_id) = model.region[i] else { continue };
        let Some(region) = regions.get(region_id.index()) else { continue };
        let c = model.pos(i);
        if region.contains(c) {
            continue;
        }
        if let Some((closest, _)) = region.closest_point(c) {
            // d/dc |c - closest|² = 2 (c - closest).
            grad_x[i] += (c.x - closest.x) * (2.0 * weight);
            grad_y[i] += (c.y - closest.y) * (2.0 * weight);
        }
    }
}

/// Projects fenced objects hovering just outside their fence back inside:
/// any fenced object whose center is outside but within `max_dist` of the
/// fence is moved to the closest interior point, inset so the object
/// outline fits the part (or the part center line when the part is
/// narrower than the object). Returns the number of objects moved.
///
/// This is the projection step of projected gradient descent for the hard
/// fence constraint. The pull-in force transports far-away objects toward
/// the fence, but near the boundary it fights the fence density field and
/// the global step normalization (one step can overshoot a sub-bin gap
/// many times over), leaving a thin oscillating layer of violators.
/// Snapping that layer — and only that layer — lets the fence's own
/// density field take over spreading the object inside.
pub fn fence_project(model: &mut Model, regions: &[Region], max_dist: f64) -> usize {
    if regions.is_empty() {
        return 0;
    }
    let mut moved = 0;
    for i in 0..model.len() {
        let Some(region_id) = model.region[i] else { continue };
        let Some(region) = regions.get(region_id.index()) else { continue };
        let c = model.pos(i);
        if region.contains(c) {
            continue;
        }
        let Some((closest, part)) = region.closest_point(c) else { continue };
        if closest.distance(c) > max_dist {
            continue;
        }
        let r = region.rects()[part];
        let (w, h) = model.size[i];
        let sx = (w / 2.0).min(r.width() / 2.0);
        let sy = (h / 2.0).min(r.height() / 2.0);
        model.set_pos(
            i,
            Point::new(
                closest.x.clamp(r.xl + sx, r.xh - sx),
                closest.y.clamp(r.yl + sy, r.yh - sy),
            ),
        );
        moved += 1;
    }
    moved
}

/// Total squared fence-violation distance (diagnostic; zero when every
/// fenced object's center is inside its fence).
pub fn fence_violation(model: &Model, regions: &[Region]) -> f64 {
    let mut total = 0.0;
    for i in 0..model.len() {
        let Some(region_id) = model.region[i] else { continue };
        let Some(region) = regions.get(region_id.index()) else { continue };
        let d = region.distance(model.pos(i));
        if d.is_finite() {
            total += d * d;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::RegionId;
    use rdp_geom::Rect;

    fn fenced_model(pos: Point) -> (Model, Vec<Region>) {
        let model = Model::from_parts(
            vec![pos],
            vec![(4.0, 10.0)],
            vec![40.0],
            vec![false],
            vec![Some(RegionId(0))],
            &[],
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        );
        let regions = vec![Region::new("R", vec![Rect::new(60.0, 60.0, 90.0, 90.0)])];
        (model, regions)
    }

    fn grad_of(model: &Model, regions: &[Region], weight: f64) -> (Vec<f64>, Vec<f64>) {
        let mut gx = vec![0.0; model.len()];
        let mut gy = vec![0.0; model.len()];
        fence_grad(model, regions, weight, &mut gx, &mut gy);
        (gx, gy)
    }

    #[test]
    fn outside_object_is_pulled_toward_fence() {
        let (model, regions) = fenced_model(Point::new(10.0, 10.0));
        let (gx, gy) = grad_of(&model, &regions, 1.0);
        // Descent direction −grad points toward the fence (up-right).
        assert!(-gx[0] > 0.0 && -gy[0] > 0.0);
        // Magnitude = 2·distance vector.
        assert!((gx[0] - 2.0 * (10.0 - 60.0)).abs() < 1e-9);
    }

    #[test]
    fn inside_object_feels_nothing() {
        let (model, regions) = fenced_model(Point::new(70.0, 70.0));
        let (gx, gy) = grad_of(&model, &regions, 1.0);
        assert_eq!((gx[0], gy[0]), (0.0, 0.0));
        assert_eq!(fence_violation(&model, &regions), 0.0);
    }

    #[test]
    fn unfenced_object_feels_nothing() {
        let (mut model, regions) = fenced_model(Point::new(10.0, 10.0));
        model.region[0] = None;
        let (gx, gy) = grad_of(&model, &regions, 1.0);
        assert_eq!((gx[0], gy[0]), (0.0, 0.0));
    }

    #[test]
    fn violation_measures_squared_distance() {
        let (model, regions) = fenced_model(Point::new(60.0, 10.0));
        // Distance straight down from the fence bottom edge = 50.
        assert!((fence_violation(&model, &regions) - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn weight_scales_linearly() {
        let (model, regions) = fenced_model(Point::new(10.0, 70.0));
        let (g1x, _) = grad_of(&model, &regions, 1.0);
        let (g3x, _) = grad_of(&model, &regions, 3.0);
        assert!((g3x[0] - 3.0 * g1x[0]).abs() < 1e-9);
    }

    #[test]
    fn projection_snaps_boundary_layer_inside() {
        let (mut model, regions) = fenced_model(Point::new(59.0, 70.0));
        // Too far for a 0.5 radius, close enough for 2.0.
        assert_eq!(fence_project(&mut model, &regions, 0.5), 0);
        assert_eq!(fence_project(&mut model, &regions, 2.0), 1);
        let p = model.pos(0);
        assert!(regions[0].contains(p), "not projected inside: {p:?}");
        // Inset by half the object width.
        assert!((p.x - 62.0).abs() < 1e-9, "x {}", p.x);
    }
}
