//! Reference (pre-SoA) kernel implementations, kept as a bitwise oracle.
//!
//! Before the CSR/SoA layout refactor, the model stored positions as a
//! `Vec<Point>` and nets as per-net `Vec` of pins; the wirelength and
//! density kernels walked that pointer-rich representation. This module
//! preserves those kernels *verbatim* (modulo the type names) against a
//! [`RefModel`] converted from the current [`Model`]:
//!
//! * the layout-equivalence property tests prove the new flat-array
//!   kernels produce **bitwise identical** HPWL, wirelength and gradients
//!   — so the layout refactor is observationally a no-op;
//! * `bench_scale` times these kernels as the "before" baseline for the
//!   scale speedup measurement, at equal thread counts.
//!
//! Nothing in the production flow calls this module.

use crate::density::{bell, bell_grad, BinGrid, DensityField, DensityStats};
use crate::model::{Model, FIXED_PIN};
use crate::wirelength::WirelengthModel;
use rdp_geom::parallel::{chunk_spans, chunked_map, Parallelism};
use rdp_geom::{Point, Rect};

/// Nets per chunk — must match the production kernel's constant so chunk
/// boundaries (and thus merge order) agree.
const NET_CHUNK: usize = 256;
/// Members per chunk — likewise.
const MEMBER_CHUNK: usize = 512;

/// Pin of a [`RefNet`]: the pre-refactor AoS representation.
#[derive(Debug, Clone, Copy)]
pub struct RefPin {
    /// Carrying object, or `None` for a fixed anchor.
    pub obj: Option<u32>,
    /// Center-relative offset (movable) or absolute position (fixed).
    pub offset: Point,
}

impl RefPin {
    #[inline]
    fn position(&self, pos: &[Point]) -> Point {
        match self.obj {
            Some(o) => pos[o as usize] + self.offset,
            None => self.offset,
        }
    }
}

/// Net over [`RefPin`]s.
#[derive(Debug, Clone)]
pub struct RefNet {
    /// Net weight.
    pub weight: f64,
    /// The pins, in model pin order.
    pub pins: Vec<RefPin>,
}

/// The pre-refactor array-of-structs model view.
#[derive(Debug, Clone)]
pub struct RefModel {
    /// Object centers.
    pub pos: Vec<Point>,
    /// Physical (width, height) per object.
    pub size: Vec<(f64, f64)>,
    /// Density area per object.
    pub area: Vec<f64>,
    /// Nets.
    pub nets: Vec<RefNet>,
    /// Placement area.
    pub die: Rect,
}

impl RefModel {
    /// Converts the flat-layout model into the historical representation.
    pub fn from_model(m: &Model) -> Self {
        let nets = (0..m.num_nets())
            .map(|ni| RefNet {
                weight: m.net_weight[ni],
                pins: m
                    .net_pins(ni)
                    .map(|k| RefPin {
                        obj: (m.pin_obj[k] != FIXED_PIN).then_some(m.pin_obj[k]),
                        offset: Point::new(m.pin_off_x[k], m.pin_off_y[k]),
                    })
                    .collect(),
            })
            .collect();
        RefModel {
            pos: m.positions(),
            size: m.size.clone(),
            area: m.area.clone(),
            nets,
            die: m.die,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the model has no objects.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Exact HPWL — the historical implementation.
    pub fn hpwl(&self) -> f64 {
        self.nets
            .iter()
            .map(|net| {
                let mut bb = Rect::empty();
                for p in &net.pins {
                    bb.expand_to(p.position(&self.pos));
                }
                if net.pins.is_empty() {
                    0.0
                } else {
                    bb.half_perimeter()
                }
            })
            .sum()
    }
}

fn lse_axis(coords: &[f64], gamma: f64, pin_grad: &mut [f64]) -> f64 {
    let max = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = coords.iter().copied().fold(f64::INFINITY, f64::min);
    let mut s_max = 0.0;
    let mut s_min = 0.0;
    for &x in coords {
        s_max += ((x - max) / gamma).exp();
        s_min += ((min - x) / gamma).exp();
    }
    for (g, &x) in pin_grad.iter_mut().zip(coords) {
        *g = ((x - max) / gamma).exp() / s_max - ((min - x) / gamma).exp() / s_min;
    }
    gamma * s_max.ln() + max + gamma * s_min.ln() - min
}

fn wa_axis(coords: &[f64], gamma: f64, pin_grad: &mut [f64]) -> f64 {
    let max = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = coords.iter().copied().fold(f64::INFINITY, f64::min);
    let (mut s_p, mut t_p, mut s_m, mut t_m) = (0.0, 0.0, 0.0, 0.0);
    for &x in coords {
        let ep = ((x - max) / gamma).exp();
        let em = ((min - x) / gamma).exp();
        s_p += ep;
        t_p += x * ep;
        s_m += em;
        t_m += x * em;
    }
    let f_max = t_p / s_p;
    let f_min = t_m / s_m;
    for (g, &x) in pin_grad.iter_mut().zip(coords) {
        let ep = ((x - max) / gamma).exp();
        let em = ((min - x) / gamma).exp();
        let d_max = ep / s_p * (1.0 + (x - f_max) / gamma);
        let d_min = em / s_m * (1.0 - (x - f_min) / gamma);
        *g = d_max - d_min;
    }
    f_max - f_min
}

struct ChunkPartial {
    net_totals: Vec<f64>,
    contribs: Vec<(u32, f64, f64)>,
}

fn eval_net_span(
    model: &RefModel,
    which: WirelengthModel,
    gamma: f64,
    span: std::ops::Range<usize>,
) -> ChunkPartial {
    let mut out = ChunkPartial {
        net_totals: Vec::with_capacity(span.len()),
        contribs: Vec::new(),
    };
    let mut xs: Vec<f64> = Vec::with_capacity(16);
    let mut ys: Vec<f64> = Vec::with_capacity(16);
    let mut gx: Vec<f64> = Vec::with_capacity(16);
    let mut gy: Vec<f64> = Vec::with_capacity(16);
    for net in &model.nets[span] {
        if net.pins.len() < 2 {
            continue;
        }
        xs.clear();
        ys.clear();
        for p in &net.pins {
            let pos = p.position(&model.pos);
            xs.push(pos.x);
            ys.push(pos.y);
        }
        gx.resize(xs.len(), 0.0);
        gy.resize(ys.len(), 0.0);
        let (wx, wy) = match which {
            WirelengthModel::Lse => (
                lse_axis(&xs, gamma, &mut gx),
                lse_axis(&ys, gamma, &mut gy),
            ),
            WirelengthModel::Wa => (
                wa_axis(&xs, gamma, &mut gx),
                wa_axis(&ys, gamma, &mut gy),
            ),
        };
        out.net_totals.push(net.weight * (wx + wy));
        for (k, p) in net.pins.iter().enumerate() {
            if let Some(o) = p.obj {
                out.contribs.push((o, net.weight * gx[k], net.weight * gy[k]));
            }
        }
    }
    out
}

/// The historical smooth-wirelength gradient: chunked over nets, partial
/// results merged in net order, scattered into `grad`.
pub fn ref_smooth_wl_grad_par(
    model: &RefModel,
    which: WirelengthModel,
    gamma: f64,
    grad: &mut [Point],
    par: &Parallelism,
) -> f64 {
    assert_eq!(grad.len(), model.len(), "gradient buffer size mismatch");
    let spans: Vec<_> = chunk_spans(model.nets.len(), NET_CHUNK).collect();
    let partials = chunked_map(par, spans.len(), |ci| {
        eval_net_span(model, which, gamma, spans[ci].clone())
    });
    let mut total = 0.0;
    for part in &partials {
        for &t in &part.net_totals {
            total += t;
        }
        for &(o, dx, dy) in &part.contribs {
            let g = &mut grad[o as usize];
            g.x += dx;
            g.y += dy;
        }
    }
    total
}

fn rasterize_span(
    g: &BinGrid,
    model: &RefModel,
    members: &[u32],
    span: std::ops::Range<usize>,
) -> (Vec<f64>, Vec<(u32, f64)>) {
    let mut scales = vec![0.0f64; span.len()];
    let mut deposits: Vec<(u32, f64)> = Vec::new();
    for (si, &oi) in members[span].iter().enumerate() {
        let o = oi as usize;
        let (w, h) = model.size[o];
        let c = model.pos[o];
        let rx = w / 2.0 + 2.0 * g.bin_w;
        let ry = h / 2.0 + 2.0 * g.bin_h;
        let (x0, x1) = g.x_range(c.x - rx, c.x + rx);
        let (y0, y1) = g.y_range(c.y - ry, c.y + ry);
        let mut sum = 0.0;
        for by in y0..=y1 {
            let py = bell((c.y - g.bin_center(x0, by).y).abs(), h, g.bin_h);
            if py == 0.0 {
                continue;
            }
            for bx in x0..=x1 {
                let px = bell((c.x - g.bin_center(bx, by).x).abs(), w, g.bin_w);
                sum += px * py;
            }
        }
        if sum <= 0.0 {
            continue;
        }
        let scale = model.area[o] / sum;
        scales[si] = scale;
        for by in y0..=y1 {
            let py = bell((c.y - g.bin_center(x0, by).y).abs(), h, g.bin_h);
            if py == 0.0 {
                continue;
            }
            for bx in x0..=x1 {
                let px = bell((c.x - g.bin_center(bx, by).x).abs(), w, g.bin_w);
                deposits.push(((by * g.nx + bx) as u32, scale * px * py));
            }
        }
    }
    (scales, deposits)
}

fn gradient_span(
    g: &BinGrid,
    model: &RefModel,
    members: &[u32],
    scales: &[f64],
    residual: &[f64],
    span: std::ops::Range<usize>,
) -> Vec<Point> {
    let mut out = vec![Point::ORIGIN; span.len()];
    for (si, &oi) in members[span.clone()].iter().enumerate() {
        let o = oi as usize;
        let scale = scales[span.start + si];
        if scale == 0.0 {
            continue;
        }
        let (w, h) = model.size[o];
        let c = model.pos[o];
        let rx = w / 2.0 + 2.0 * g.bin_w;
        let ry = h / 2.0 + 2.0 * g.bin_h;
        let (x0, x1) = g.x_range(c.x - rx, c.x + rx);
        let (y0, y1) = g.y_range(c.y - ry, c.y + ry);
        let mut gx = 0.0;
        let mut gy = 0.0;
        for by in y0..=y1 {
            let dyv = c.y - g.bin_center(x0, by).y;
            let py = bell(dyv.abs(), h, g.bin_h);
            let dpy = bell_grad(dyv.abs(), h, g.bin_h) * dyv.signum();
            if py == 0.0 && dpy == 0.0 {
                continue;
            }
            for bx in x0..=x1 {
                let dxv = c.x - g.bin_center(bx, by).x;
                let px = bell(dxv.abs(), w, g.bin_w);
                let dpx = bell_grad(dxv.abs(), w, g.bin_w) * dxv.signum();
                let r = residual[by * g.nx + bx];
                if r == 0.0 {
                    continue;
                }
                gx += r * scale * dpx * py;
                gy += r * scale * px * dpy;
            }
        }
        out[si] = Point::new(gx, gy);
    }
    out
}

/// The historical density field: a cloned bin grid plus member list.
#[derive(Debug, Clone)]
pub struct RefDensityField {
    /// The bins (cloned from the production field, identical geometry,
    /// capacities and targets).
    pub grid: BinGrid,
    /// Member object indices.
    pub members: Vec<u32>,
}

impl RefDensityField {
    /// Snapshot of a production field.
    pub fn from_field(f: &DensityField) -> Self {
        RefDensityField { grid: f.grid.clone(), members: f.members.clone() }
    }

    /// The historical density penalty + gradient: rasterize chunks in
    /// parallel, deposit sequentially in member order, sequential residual
    /// pass, chunked gradient read-back merged in member order.
    pub fn penalty_grad_par(
        &mut self,
        model: &RefModel,
        grad: &mut [Point],
        par: &Parallelism,
    ) -> DensityStats {
        let g = &mut self.grid;
        g.density.iter_mut().for_each(|d| *d = 0.0);
        let spans: Vec<_> = chunk_spans(self.members.len(), MEMBER_CHUNK).collect();

        let mut scales = vec![0.0f64; self.members.len()];
        {
            let g_ro: &BinGrid = g;
            let members: &[u32] = &self.members;
            let partials = chunked_map(par, spans.len(), |ci| {
                rasterize_span(g_ro, model, members, spans[ci].clone())
            });
            for (span, (chunk_scales, deposits)) in spans.iter().zip(&partials) {
                scales[span.clone()].copy_from_slice(chunk_scales);
                for &(bin, amount) in deposits {
                    g.density[bin as usize] += amount;
                }
            }
        }

        let mut stats = DensityStats::default();
        let mut residual = vec![0.0f64; g.density.len()];
        for (i, r) in residual.iter_mut().enumerate() {
            let over = (g.density[i] - g.target[i]).max(0.0);
            stats.penalty += over * over;
            *r = 2.0 * over;
            stats.overflow_area += (g.density[i] - g.capacity[i]).max(0.0);
            if g.capacity[i] > 1e-12 {
                stats.max_ratio = stats.max_ratio.max(g.density[i] / g.capacity[i]);
            }
        }

        {
            let g_ro: &BinGrid = g;
            let members: &[u32] = &self.members;
            let scales_ro: &[f64] = &scales;
            let residual_ro: &[f64] = &residual;
            let partials = chunked_map(par, spans.len(), |ci| {
                gradient_span(g_ro, model, members, scales_ro, residual_ro, spans[ci].clone())
            });
            for (span, chunk_grad) in spans.iter().zip(&partials) {
                for (si, gp) in chunk_grad.iter().enumerate() {
                    let o = self.members[span.start + si] as usize;
                    grad[o].x += gp.x;
                    grad[o].y += gp.y;
                }
            }
        }
        stats
    }
}
