//! The end-to-end placement pipeline: multilevel clustering → analytical
//! global placement (hierarchy-aware, with macro rotation) → routability
//! optimization (congestion-driven inflation) → legalization → detailed
//! placement.

use crate::cluster::{build_levels, project_down};
use crate::detail::{detailed_place, DetailOptions, DetailStats};
use crate::inflation::{inflate, InflationConfig, InflationStats};
use crate::legalize::{legalize_with_displacement_par, LegalizeStats};
use crate::macro_handling::optimize_macro_orientations;
use crate::model::Model;
use crate::optimizer::{run_global_place, GpOptions, GpOutcome};
use crate::recovery::{BudgetClock, DegradedResult, FlowBudget, FlowCheckpoint, RecoveryEvent};
use crate::trace::Trace;
use rdp_db::{Design, NodeId, Placement, Region};
use rdp_geom::Rect;
use rdp_route::{GlobalRouter, RouteGrid, RouterConfig, RoutingOutcome};
use std::fmt;
use std::time::{Duration, Instant};

/// Error cases of [`Placer::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The design has no movable nodes.
    NothingToPlace,
    /// The design has standard cells but no rows to legalize them into.
    NoRows,
    /// Global placement diverged beyond recovery and no feasible
    /// checkpoint exists to fall back to (e.g. the *initial* placement was
    /// already non-finite). Mid-flow divergence never reaches this: it
    /// rolls back to the latest [`FlowCheckpoint`] and reports a
    /// [`DegradedResult`] instead.
    Diverged {
        /// The stage that diverged.
        stage: String,
        /// Recovery retries spent before giving up.
        retries: usize,
    },
    /// A checkpoint passed to [`Placer::resume_from`] does not fit the
    /// design (wrong node count, wrong object count, or non-finite state).
    BadResume {
        /// What was inconsistent.
        reason: String,
    },
    /// The cancel token fired and [`Placer::run`] (rather than
    /// [`Placer::run_resumable`], which returns the checkpoint) was used.
    Interrupted {
        /// Stage of the checkpoint the run stopped at.
        stage: String,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::NothingToPlace => write!(f, "design has no movable nodes"),
            PlaceError::NoRows => write!(f, "design has standard cells but no placement rows"),
            PlaceError::Diverged { stage, retries } => write!(
                f,
                "placement diverged unrecoverably in stage `{stage}` ({retries} recovery retries, no checkpoint to restore)"
            ),
            PlaceError::BadResume { reason } => {
                write!(f, "resume checkpoint does not fit the design: {reason}")
            }
            PlaceError::Interrupted { stage } => {
                write!(f, "placement interrupted by cancel token at stage `{stage}`")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Macro-orientation optimization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RotationMode {
    /// Greedy argmin over the eight orientations against exact incident
    /// HPWL (robust; the default).
    #[default]
    Discrete,
    /// The paper's continuous rotation force: a per-macro angle variable
    /// optimized analytically and snapped to quarter turns, followed by a
    /// discrete flipping decision.
    Continuous,
}

/// One tier of the congestion-estimator ladder, cheapest to most
/// accurate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionSource {
    /// The fast probabilistic pattern estimate
    /// ([`rdp_route::pattern::estimate_congestion_into`]).
    #[default]
    Probabilistic,
    /// The learned per-edge regressor ([`rdp_route::learned`]): trained
    /// offline on the router's own overflow, a few times the estimator's
    /// cost and a fraction of the router's.
    Learned,
    /// *True routed* congestion from the negotiation router: the first
    /// router round routes the design from scratch, every later one calls
    /// [`GlobalRouter::reroute_incremental`] on just the moved cells.
    Router,
}

impl CongestionSource {
    /// Short label, as it appears in the trace CSV `estimator_tier`
    /// column and the CLI `--estimator` flag.
    pub fn label(self) -> &'static str {
        match self {
            CongestionSource::Probabilistic => "prob",
            CongestionSource::Learned => "learned",
            CongestionSource::Router => "router",
        }
    }
}

/// Which [`CongestionSource`] each routability round consumes.
///
/// The default ([`CongestionSchedule::Uniform`] probabilistic) is
/// byte-identical to the historical estimator-only loop;
/// [`CongestionSchedule::auto`] is the recommended ladder — cheap learned
/// tiers early, the real incremental router for the last round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestionSchedule {
    /// Every round uses the same source.
    Uniform(CongestionSource),
    /// Round `i` uses `sources[i]`; rounds beyond the list repeat the
    /// last entry (an empty list behaves like the default).
    PerRound(Vec<CongestionSource>),
    /// The learned tier for every round except the final `router_tail`
    /// rounds, which use the incremental router.
    Ladder {
        /// How many trailing rounds get true routed congestion.
        router_tail: usize,
    },
}

impl Default for CongestionSchedule {
    fn default() -> Self {
        CongestionSchedule::Uniform(CongestionSource::Probabilistic)
    }
}

impl CongestionSchedule {
    /// The recommended ladder: learned rounds early, one router round
    /// last.
    pub fn auto() -> Self {
        CongestionSchedule::Ladder { router_tail: 1 }
    }

    /// The source of inflation round `round` out of `total_rounds`.
    pub fn source_for(&self, round: usize, total_rounds: usize) -> CongestionSource {
        match self {
            CongestionSchedule::Uniform(s) => *s,
            CongestionSchedule::PerRound(v) => v
                .get(round)
                .or(v.last())
                .copied()
                .unwrap_or_default(),
            CongestionSchedule::Ladder { router_tail } => {
                if round + router_tail >= total_rounds {
                    CongestionSource::Router
                } else {
                    CongestionSource::Learned
                }
            }
        }
    }

    /// Parses the CLI spelling: `prob`, `learned`, `router` (uniform
    /// schedules) or `auto` (the ladder).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "prob" => Some(CongestionSchedule::Uniform(CongestionSource::Probabilistic)),
            "learned" => Some(CongestionSchedule::Uniform(CongestionSource::Learned)),
            "router" => Some(CongestionSchedule::Uniform(CongestionSource::Router)),
            "auto" => Some(CongestionSchedule::auto()),
            _ => None,
        }
    }
}

/// How the routability loop obtains its congestion picture: a
/// [`CongestionSchedule`] over the three estimator tiers, plus the router
/// and learned-tier configuration. Construct via
/// [`GpRoutabilityOptions::builder`] (mirrors [`RouterConfig::builder`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct GpRoutabilityOptions {
    /// Legacy switch for the two-tier days: `true` meant "router
    /// congestion every round". Only honored when `schedule` is still the
    /// default (see [`GpRoutabilityOptions::effective_schedule`]).
    #[deprecated(
        note = "use `GpRoutabilityOptions::builder().schedule(CongestionSchedule::Uniform(CongestionSource::Router))`"
    )]
    pub use_router_congestion: bool,
    /// Router configuration of the [`CongestionSource::Router`] tier. Its
    /// `parallelism` is overridden by [`GpOptions::parallelism`] so the
    /// whole pipeline shares one thread-count knob.
    pub router: RouterConfig,
    /// Which tier each inflation round consumes.
    pub schedule: CongestionSchedule,
    /// Weights of the [`CongestionSource::Learned`] tier; `None` uses the
    /// checked-in [`rdp_route::EstimatorWeights::builtin`] set.
    pub estimator_weights: Option<rdp_route::EstimatorWeights>,
}

impl Default for GpRoutabilityOptions {
    fn default() -> Self {
        GpRoutabilityOptions::builder().build()
    }
}

impl GpRoutabilityOptions {
    /// Starts a builder with the default (probabilistic-only) schedule.
    pub fn builder() -> GpRoutabilityOptionsBuilder {
        GpRoutabilityOptionsBuilder::default()
    }

    /// A builder seeded with this configuration, for deriving variants.
    pub fn to_builder(&self) -> GpRoutabilityOptionsBuilder {
        GpRoutabilityOptionsBuilder {
            router: self.router.clone(),
            schedule: self.effective_schedule(),
            estimator_weights: self.estimator_weights.clone(),
        }
    }

    /// The schedule the placer actually runs: the deprecated
    /// `use_router_congestion = true` shim maps to a uniform router
    /// schedule as long as `schedule` itself was left at its default (an
    /// explicit schedule always wins).
    pub fn effective_schedule(&self) -> CongestionSchedule {
        #[allow(deprecated)]
        if self.use_router_congestion && self.schedule == CongestionSchedule::default() {
            CongestionSchedule::Uniform(CongestionSource::Router)
        } else {
            self.schedule.clone()
        }
    }

    /// The learned-tier weights in effect (explicit or built-in).
    pub fn weights(&self) -> &rdp_route::EstimatorWeights {
        self.estimator_weights
            .as_ref()
            .unwrap_or_else(|| rdp_route::EstimatorWeights::builtin())
    }
}

/// Builder of [`GpRoutabilityOptions`] (the congestion-source half of the
/// placement options), mirroring [`RouterConfig::builder`].
///
/// # Examples
///
/// ```
/// use rdp_core::{CongestionSchedule, GpRoutabilityOptions};
///
/// let opts = GpRoutabilityOptions::builder()
///     .schedule(CongestionSchedule::auto())
///     .build();
/// assert_eq!(opts.effective_schedule(), CongestionSchedule::auto());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GpRoutabilityOptionsBuilder {
    router: RouterConfig,
    schedule: CongestionSchedule,
    estimator_weights: Option<rdp_route::EstimatorWeights>,
}

impl GpRoutabilityOptionsBuilder {
    /// Sets the router configuration of the router tier.
    pub fn router(mut self, config: RouterConfig) -> Self {
        self.router = config;
        self
    }

    /// Sets the per-round congestion schedule.
    pub fn schedule(mut self, schedule: CongestionSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shorthand for a uniform schedule over one source.
    pub fn source(self, source: CongestionSource) -> Self {
        self.schedule(CongestionSchedule::Uniform(source))
    }

    /// Overrides the learned-tier weights (default: the checked-in set).
    pub fn estimator_weights(mut self, weights: rdp_route::EstimatorWeights) -> Self {
        self.estimator_weights = Some(weights);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> GpRoutabilityOptions {
        #[allow(deprecated)]
        GpRoutabilityOptions {
            use_router_congestion: false,
            router: self.router,
            schedule: self.schedule,
            estimator_weights: self.estimator_weights,
        }
    }
}

/// Configuration of a full placement run.
///
/// The presets encode the experiment configurations of DESIGN.md:
/// [`PlaceOptions::default`] is the paper's full flow,
/// [`PlaceOptions::wirelength_driven`] is baseline **B1** (no routability),
/// [`PlaceOptions::fence_blind`] is **B2**, [`PlaceOptions::flat`] is
/// **B3**, and `with_wirelength(Lse)` gives **B4**.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceOptions {
    /// Global-placement engine options.
    pub gp: GpOptions,
    /// Enable multilevel clustering.
    pub multilevel: bool,
    /// Stop coarsening below this object count.
    pub cluster_limit: usize,
    /// Honor fence regions during global placement (region density fields
    /// + pull-in force). Legalization always honors them.
    pub hierarchy_aware: bool,
    /// Enable the congestion-driven routability loop.
    pub routability: bool,
    /// Routability rounds.
    pub inflation_rounds: usize,
    /// Inflation tuning.
    pub inflation: InflationConfig,
    /// Congestion source of the routability loop (pattern estimate vs the
    /// incremental negotiation router).
    pub routability_opts: GpRoutabilityOptions,
    /// Spread cells out of hot spots by inflating their density area
    /// (the paper's primary mechanism).
    pub inflate_cells: bool,
    /// Additionally shorten congested nets by boosting their weights (the
    /// alternative mechanism several contest placers used; off by default).
    pub net_weighting: bool,
    /// Net-weighting tuning.
    pub net_weighting_config: crate::net_weighting::NetWeightingConfig,
    /// Enable macro rotation/flipping optimization.
    pub macro_rotation: bool,
    /// How macro orientations are optimized (discrete re-selection or the
    /// paper's continuous rotation force; see [`crate::rotation`]).
    pub rotation_mode: RotationMode,
    /// Run detailed placement after legalization.
    pub detailed: bool,
    /// Detailed-placement tuning.
    pub detail: DetailOptions,
    /// Wall-clock budgets; the default is unlimited. See [`FlowBudget`]
    /// for the truncation semantics of each scope.
    pub budget: FlowBudget,
    /// Seed for the symmetry-breaking initial jitter.
    pub seed: u64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            gp: GpOptions::default(),
            multilevel: true,
            cluster_limit: 1500,
            hierarchy_aware: true,
            routability: true,
            inflation_rounds: 3,
            inflation: InflationConfig::default(),
            routability_opts: GpRoutabilityOptions::default(),
            inflate_cells: true,
            net_weighting: false,
            net_weighting_config: crate::net_weighting::NetWeightingConfig::default(),
            rotation_mode: RotationMode::Discrete,
            macro_rotation: true,
            detailed: true,
            detail: DetailOptions { passes: 2, congestion_weight: 8.0, ..DetailOptions::default() },
            budget: FlowBudget::default(),
            seed: 1,
        }
    }
}

impl PlaceOptions {
    /// Reduced-effort preset for tests, examples and CI.
    pub fn fast() -> Self {
        PlaceOptions {
            gp: GpOptions {
                max_outer: 14,
                inner_iters: 25,
                overflow_target: 0.12,
                ..GpOptions::default()
            },
            inflation_rounds: 2,
            detail: DetailOptions { passes: 1, congestion_weight: 8.0, ..DetailOptions::default() },
            ..PlaceOptions::default()
        }
    }

    /// Baseline **B1**: pure wirelength-driven placement (NTUplace4-like) —
    /// no congestion estimation, no inflation.
    pub fn wirelength_driven(self) -> Self {
        PlaceOptions {
            routability: false,
            detail: DetailOptions { congestion_weight: 0.0, ..self.detail },
            ..self
        }
    }

    /// Baseline **B2**: hierarchy-blind global placement (fences only seen
    /// by the legalizer).
    pub fn fence_blind(self) -> Self {
        PlaceOptions { hierarchy_aware: false, ..self }
    }

    /// Baseline **B3**: flat (non-multilevel) global placement.
    pub fn flat(self) -> Self {
        PlaceOptions { multilevel: false, ..self }
    }

    /// Selects the smooth wirelength model (**T4** compares Wa vs Lse).
    pub fn with_wirelength(mut self, model: crate::WirelengthModel) -> Self {
        self.gp.wirelength = model;
        self
    }

    /// Disables macro rotation (**T5** ablation).
    pub fn without_rotation(self) -> Self {
        PlaceOptions { macro_rotation: false, ..self }
    }

    /// Switches the routability mechanism from cell inflation to
    /// congestion-driven net weighting (**T5** compares both).
    pub fn with_net_weighting_only(self) -> Self {
        PlaceOptions {
            inflate_cells: false,
            net_weighting: true,
            ..self
        }
    }

    /// Uses the continuous rotation force instead of discrete orientation
    /// re-selection.
    pub fn with_continuous_rotation(self) -> Self {
        PlaceOptions { rotation_mode: RotationMode::Continuous, ..self }
    }

    /// Sets the worker-thread count for the parallel kernels (`0` = one per
    /// available CPU). Results are bitwise identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.gp.parallelism = rdp_geom::parallel::Parallelism::new(threads);
        self
    }

    /// Selects the global-placement solver and density model (the
    /// ePlace-style path is `with_solver(GpSolver::Nesterov,
    /// GpDensityModel::Electrostatic)`; the default is CG + bell).
    pub fn with_solver(
        mut self,
        solver: crate::optimizer::GpSolver,
        density_model: crate::optimizer::GpDensityModel,
    ) -> Self {
        self.gp.solver = solver;
        self.gp.density_model = density_model;
        self
    }

    /// Feeds the inflation rounds true routed congestion via the
    /// incremental reroute API instead of the pattern estimate (first
    /// round routes from scratch, later rounds reroute only moved cells).
    /// Shorthand for `with_estimator(CongestionSchedule::Uniform(
    /// CongestionSource::Router))`.
    pub fn with_router_congestion(mut self) -> Self {
        #[allow(deprecated)]
        {
            self.routability_opts.use_router_congestion = true;
        }
        self
    }

    /// Sets the congestion-estimator schedule of the routability loop
    /// (which of the three tiers each inflation round consumes; see
    /// [`CongestionSchedule`]).
    pub fn with_estimator(mut self, schedule: CongestionSchedule) -> Self {
        self.routability_opts.schedule = schedule;
        self
    }

    /// Sets the wall-clock budgets of the flow (see [`FlowBudget`]).
    pub fn with_budget(mut self, budget: FlowBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Outcome of a full placement run.
#[derive(Debug, Clone)]
pub struct PlaceResult {
    /// The final (legal, unless legalization reported failures) placement.
    pub placement: Placement,
    /// Final total HPWL.
    pub hpwl: f64,
    /// Global-placement outcome of the last GP stage.
    pub gp: GpOutcome,
    /// Legalization statistics.
    pub legalize: LegalizeStats,
    /// Detailed-placement statistics, when enabled.
    pub detail: Option<DetailStats>,
    /// Inflation statistics per routability round.
    pub inflation: Vec<InflationStats>,
    /// Convergence and stage-timing trace.
    pub trace: Trace,
    /// Structured degradation report: `Some` when the flow diverged, fell
    /// back, rolled back to a checkpoint or was budget-truncated — the
    /// placement is then the best recovered one, not the full-quality
    /// flow's output. `None` on a clean run.
    pub degraded: Option<DegradedResult>,
    /// Total wall time.
    pub elapsed: Duration,
}

/// The placement engine.
///
/// # Examples
///
/// ```
/// use rdp_core::{PlaceOptions, Placer};
/// use rdp_gen::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bench = generate(&GeneratorConfig::tiny("p", 5))?;
/// let result = Placer::new(&bench.design, PlaceOptions::fast())
///     .with_initial(bench.placement.clone())
///     .run()?;
/// assert!(result.hpwl > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct Placer<'a> {
    design: &'a Design,
    options: PlaceOptions,
    initial: Option<Placement>,
    resume: Option<FlowCheckpoint>,
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    checkpoint_sink: Option<CheckpointSink<'a>>,
}

/// Observer invoked with each [`FlowCheckpoint`] as a stage completes.
type CheckpointSink<'a> = Box<dyn FnMut(&FlowCheckpoint) + Send + 'a>;

impl fmt::Debug for Placer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Placer")
            .field("options", &self.options)
            .field("initial", &self.initial.is_some())
            .field("resume", &self.resume.as_ref().map(|cp| cp.stage.as_str()))
            .field("cancel", &self.cancel.is_some())
            .field("checkpoint_sink", &self.checkpoint_sink.is_some())
            .finish()
    }
}

/// Outcome of [`Placer::run_resumable`]: the flow either ran to the end or
/// stopped at a stage boundary because the cancel token fired.
#[derive(Debug)]
pub enum FlowProgress {
    /// The pipeline completed (possibly degraded — see
    /// [`PlaceResult::degraded`]).
    Completed(Box<PlaceResult>),
    /// The cancel token fired; the carried checkpoint is the last completed
    /// stage, suitable for [`Placer::resume_from`] in a later run.
    Interrupted(FlowCheckpoint),
}

impl<'a> Placer<'a> {
    /// Creates a placer. Without [`Placer::with_initial`], fixed nodes are
    /// assumed pre-placed by the design's own `.pl` semantics — i.e. the
    /// default [`Placement::new_centered`] puts *everything* (including
    /// fixed nodes) at the die center, which is only meaningful for designs
    /// without fixed nodes. Benchmarks should always pass their initial
    /// placement.
    pub fn new(design: &'a Design, options: PlaceOptions) -> Self {
        Placer {
            design,
            options,
            initial: None,
            resume: None,
            cancel: None,
            checkpoint_sink: None,
        }
    }

    /// Supplies the initial placement (fixed-node positions, terminal
    /// positions, optional warm-start positions for movables).
    pub fn with_initial(mut self, placement: Placement) -> Self {
        self.initial = Some(placement);
        self
    }

    /// Resumes the pipeline from a [`FlowCheckpoint`] captured by an
    /// earlier run (via [`Placer::with_checkpoint_sink`]) instead of
    /// starting from scratch: jitter and global placement are skipped, the
    /// inflation loop re-enters at `rounds_done`, and a legal checkpoint
    /// skips straight to detailed placement.
    ///
    /// In the default estimator-congestion mode the resumed final
    /// placement is **bitwise identical** to the uninterrupted run at any
    /// thread count; the router-congestion mode re-routes from scratch on
    /// resume (its warm routing state is not checkpointed), which may
    /// legitimately shift later rounds.
    pub fn resume_from(mut self, checkpoint: FlowCheckpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Observes every checkpoint the flow saves, as it is saved. A job
    /// server persists them so a killed run can [`Placer::resume_from`]
    /// the latest one.
    pub fn with_checkpoint_sink(
        mut self,
        sink: impl FnMut(&FlowCheckpoint) + Send + 'a,
    ) -> Self {
        self.checkpoint_sink = Some(Box::new(sink));
        self
    }

    /// Attaches a cooperative cancel token, polled at stage boundaries
    /// (never mid-kernel). When it reads `true`, [`Placer::run_resumable`]
    /// returns [`FlowProgress::Interrupted`] with the latest checkpoint.
    /// Because resume is bitwise-exact, the nondeterministic *timing* of a
    /// cancellation never changes the final placement — only where the
    /// work pauses.
    pub fn with_cancel(
        mut self,
        token: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] for structurally unplaceable designs, and
    /// [`PlaceError::Interrupted`] if a cancel token fired mid-run (use
    /// [`Placer::run_resumable`] to receive the checkpoint instead).
    pub fn run(self) -> Result<PlaceResult, PlaceError> {
        match self.run_resumable()? {
            FlowProgress::Completed(result) => Ok(*result),
            FlowProgress::Interrupted(cp) => Err(PlaceError::Interrupted { stage: cp.stage }),
        }
    }

    /// Runs the full pipeline with cancellation and resume support: the
    /// cancel token (see [`Placer::with_cancel`]) is polled at stage
    /// boundaries and stops the run at its latest checkpoint, which a
    /// later [`Placer::resume_from`] continues bitwise-exactly (in
    /// estimator-congestion mode).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] for structurally unplaceable designs or a
    /// checkpoint that does not fit the design.
    pub fn run_resumable(self) -> Result<FlowProgress, PlaceError> {
        let design = self.design;
        let mut opts = self.options;
        // One persistent worker pool serves every parallel region in the
        // flow (GP kernels, router, congestion estimation, legalization)
        // instead of spawning fresh scoped threads per kernel call.
        opts.gp.parallelism.ensure_pool();
        let opts = opts;
        let mut sink = self.checkpoint_sink;
        let cancel = self.cancel;
        let resume = self.resume;
        let t_start = Instant::now();

        if design.movable_ids().next().is_none() {
            return Err(PlaceError::NothingToPlace);
        }
        let has_cells = design.node_ids().any(|id| design.node(id).is_std_cell());
        if has_cells && design.rows().is_empty() {
            return Err(PlaceError::NoRows);
        }

        // A resume checkpoint must structurally fit this design and be
        // finite — anything else is a caller error (wrong design, corrupt
        // file), not a recoverable flow state.
        if let Some(cp) = &resume {
            let num_objects = design.movable_ids().count();
            if cp.placement.len() != design.nodes().len() {
                return Err(PlaceError::BadResume {
                    reason: format!(
                        "checkpoint has {} nodes, design has {}",
                        cp.placement.len(),
                        design.nodes().len()
                    ),
                });
            }
            if cp.density_area.len() != num_objects {
                return Err(PlaceError::BadResume {
                    reason: format!(
                        "checkpoint has {} density areas, design has {} movable objects",
                        cp.density_area.len(),
                        num_objects
                    ),
                });
            }
            if cp.placement.centers().iter().any(|c| !c.is_finite())
                || cp.density_area.iter().any(|a| !a.is_finite())
            {
                return Err(PlaceError::BadResume {
                    reason: "checkpoint contains non-finite state".into(),
                });
            }
        }

        let resuming = resume.is_some();
        let mut placement = match &resume {
            Some(cp) => cp.placement.clone(),
            None => self.initial.unwrap_or_else(|| Placement::new_centered(design)),
        };
        let mut trace = Trace::new();

        // Symmetry-breaking jitter around the initial positions. A resumed
        // run restarts *after* global placement, so jitter (an input of the
        // GP stage) must not be re-applied.
        if !resuming {
            let mut rng = rdp_geom::rng::Rng::seed_from_u64(opts.seed);
            let die = design.die();
            let jx = die.width() * 0.05;
            let jy = die.height() * 0.05;
            for id in design.movable_ids() {
                let c = placement.center(id);
                let p = rdp_geom::Point::new(
                    rdp_geom::clamp(c.x + rng.gen_range(-jx..jx), die.xl, die.xh),
                    rdp_geom::clamp(c.y + rng.gen_range(-jy..jy), die.yl, die.yh),
                );
                placement.set_center(id, p);
            }

            // The resilience layer has nothing to roll back to before the
            // first GP stage completes, so a non-finite *initial* placement
            // is the one divergence that surfaces as a hard error.
            if design
                .node_ids()
                .any(|id| !placement.center(id).is_finite())
            {
                return Err(PlaceError::Diverged { stage: "initial".into(), retries: 0 });
            }
        }

        let blocked: Vec<(Rect, f64)> = design
            .node_ids()
            .filter(|&id| design.node(id).kind() == rdp_db::NodeKind::Fixed)
            .flat_map(|id| design.blocking_rects(id, &placement))
            .map(|r| (r, 1.0))
            .collect();
        let gp_regions: &[Region] = if opts.hierarchy_aware { design.regions() } else { &[] };

        // The model is fully derivable from (design, placement) except for
        // the density areas, which cell inflation mutates cumulatively —
        // those are restored from the checkpoint on resume.
        let mut model = Model::from_design(design, &placement);
        if let Some(cp) = &resume {
            model.area.copy_from_slice(&cp.density_area);
        }
        let mut gp_outcome;

        // Resilience state: the first degraded stage (drives the
        // [`DegradedResult`] report), the checkpoint restored from (if
        // any), the latest feasible checkpoint, and the flow-wide budget.
        let mut degraded_stage: Option<String> = None;
        let mut restored_from: Option<String> = None;
        let resume_at_legalize = resume.as_ref().is_some_and(|cp| cp.legal);
        let start_round = resume.as_ref().map_or(0, |cp| cp.rounds_done);
        let mut rounds_done = start_round;
        let resume_gp = resume.as_ref().map(|cp| cp.gp);
        let mut checkpoint: Option<FlowCheckpoint> = resume;
        let flow_clock = BudgetClock::new(opts.budget.flow_wall);
        let cancelled = || {
            cancel
                .as_ref()
                .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        };

        if let Some(gp) = resume_gp {
            // Resumed run: global placement (and macro rotation) already
            // completed in the checkpointed run; the checkpoint placement
            // and restored density areas carry their full effect.
            gp_outcome = gp;
        } else {
            // --- Multilevel V-cycle (downward refinement half). ---
            let t_gp = Instant::now();
            if opts.multilevel {
                let levels = build_levels(&model, opts.cluster_limit);
                if let Some(coarsest) = levels.last() {
                    let mut coarse = coarsest.coarse.clone();
                    let coarse_opts = GpOptions {
                        max_outer: opts.gp.max_outer / 2 + 2,
                        ..opts.gp.clone()
                    };
                    // Coarse-level divergence is non-fatal: the level only
                    // provides a warm start, and the model is left at its
                    // last finite iterate either way.
                    if let Err(div) = run_global_place(
                        &mut coarse,
                        gp_regions,
                        &blocked,
                        &coarse_opts,
                        &mut trace,
                        &format!("gp/level{}", levels.len()),
                    ) {
                        degraded_stage.get_or_insert(div.stage);
                    }
                    // Walk down the hierarchy.
                    let mut positions = coarse.positions();
                    for (li, lvl) in levels.iter().enumerate().rev() {
                        // Reconstruct the model at this level: it is either
                        // the next level's coarse model or the finest model.
                        let mut level_model = if li == 0 {
                            model.clone()
                        } else {
                            levels[li - 1].coarse.clone()
                        };
                        let projected = crate::cluster::Clustering {
                            coarse: {
                                let mut c = lvl.coarse.clone();
                                c.set_positions(&positions);
                                c
                            },
                            parent: lvl.parent.clone(),
                        };
                        project_down(&mut level_model, &projected);
                        let level_opts = if li == 0 {
                            opts.gp.clone()
                        } else {
                            GpOptions { max_outer: opts.gp.max_outer / 2 + 2, ..opts.gp.clone() }
                        };
                        if let Err(div) = run_global_place(
                            &mut level_model,
                            gp_regions,
                            &blocked,
                            &level_opts,
                            &mut trace,
                            &format!("gp/level{li}"),
                        ) {
                            degraded_stage.get_or_insert(div.stage);
                        }
                        positions = level_model.positions();
                        if li == 0 {
                            model = level_model;
                        }
                    }
                }
            }
            gp_outcome = match run_global_place(
                &mut model,
                gp_regions,
                &blocked,
                &opts.gp,
                &mut trace,
                "gp/final",
            ) {
                Ok(out) => out,
                Err(div) => {
                    // The model holds its last finite iterate — usable,
                    // just not converged. Continue the flow degraded.
                    degraded_stage.get_or_insert(div.stage);
                    div.best
                }
            };
            // Paranoia: the optimizer contract guarantees a finite iterate
            // on both the Ok and Err paths; a non-finite position here
            // means the contract was violated upstream and nothing
            // checkpointable exists.
            if model.pos_x.iter().chain(&model.pos_y).any(|v| !v.is_finite()) {
                return Err(PlaceError::Diverged {
                    stage: "gp/final".into(),
                    retries: opts.gp.recovery.max_retries,
                });
            }
            trace.record_stage("global_place", t_gp.elapsed());

            // --- Macro rotation between GP and routability. ---
            if opts.macro_rotation {
                let t = Instant::now();
                model.write_back(&mut placement);
                let changed = match opts.rotation_mode {
                    RotationMode::Discrete => {
                        optimize_macro_orientations(design, &mut placement, true)
                    }
                    RotationMode::Continuous => {
                        // Continuous angles, snapped; then a flip-only
                        // discrete pass decides mirroring (the angle cannot
                        // express it).
                        let gamma = 2.0 * design.row_height().unwrap_or(10.0);
                        let out = crate::rotation::optimize_rotation_continuous(&model, gamma, 100);
                        let mut changed = 0;
                        for (a, &q) in out.angles.iter().zip(&out.snapped) {
                            let node = model.node_of[a.obj as usize];
                            let orient = crate::rotation::orient_of_quarter(q);
                            if placement.orient(node) != orient {
                                placement.set_orient(node, orient);
                                changed += 1;
                            }
                        }
                        changed + optimize_macro_orientations(design, &mut placement, false)
                    }
                };
                if changed > 0 {
                    // Orientations changed pin offsets and macro dims:
                    // rebuild the model from the updated placement and
                    // re-polish.
                    model = Model::from_design(design, &placement);
                    match run_global_place(
                        &mut model,
                        gp_regions,
                        &blocked,
                        &GpOptions { max_outer: 4, ..opts.gp.clone() },
                        &mut trace,
                        "gp/rotation",
                    ) {
                        Ok(out) => gp_outcome = out,
                        Err(div) => {
                            degraded_stage.get_or_insert(div.stage);
                            gp_outcome = div.best;
                        }
                    }
                }
                trace.record_stage("macro_rotation", t.elapsed());
            }

            // First checkpoint: the converged (or best recovered) global
            // placement, before the routability loop perturbs it.
            model.write_back(&mut placement);
            save_checkpoint(
                &mut checkpoint,
                sink.as_deref_mut(),
                &mut trace,
                "global_place",
                design,
                &placement,
                false,
                &model.area,
                0,
                gp_outcome,
            );
        }
        if cancelled() {
            let cp = checkpoint.expect("checkpoint exists after global placement");
            return Ok(FlowProgress::Interrupted(cp));
        }

        // --- Routability loop: estimate → inflate / reweight → re-place. ---
        //
        // The congestion grid is built once and refreshed in place every
        // round: capacities depend only on fixed-node blockages (which
        // never move), so re-carving them each round was pure waste. The
        // same grid serves the detailed-placement stage below.
        let mut congestion_grid: Option<rdp_route::RouteGrid> = None;
        let mut inflation_stats: Vec<InflationStats> = Vec::new();
        let mut interrupted = false;
        if resume_at_legalize {
            // Resumed from the legal checkpoint: the routability loop (and
            // legalization below) already ran in the checkpointed run.
        } else if opts.routability && opts.inflation_rounds > 0 && flow_clock.exhausted() {
            // Flow budget already spent: drop the routability loop (a
            // quality stage) and proceed straight to legalization.
            trace.record_event(RecoveryEvent::BudgetTruncated { scope: "flow".into(), at_round: 0 });
            degraded_stage.get_or_insert_with(|| "routability".into());
        } else if opts.routability && opts.inflation_rounds > 0 {
            let t = Instant::now();
            let base_weights: Vec<f64> = model.net_weight.clone();
            // State of the router tier: the previous round's routing
            // outcome (warm state for the incremental reroute) and the
            // node centers it was routed at (so the next round can compute
            // its moved-cell set). `router_degraded` downgrades remaining
            // router rounds to the probabilistic estimate when the router
            // blows its time budget (degradation ladder: true routed
            // congestion → probabilistic estimate).
            let schedule = opts.routability_opts.effective_schedule();
            let mut router_degraded = false;
            let mut router_config = opts.routability_opts.router.clone();
            router_config.parallelism = opts.gp.parallelism.clone();
            let router = GlobalRouter::new(router_config);
            let mut route_outcome: Option<RoutingOutcome> = None;
            let mut route_centers: Vec<rdp_geom::Point> =
                vec![rdp_geom::Point::ORIGIN; design.nodes().len()];
            let inflation_clock = BudgetClock::new(opts.budget.inflation_wall);
            for round in start_round..opts.inflation_rounds {
                if cancelled() {
                    // Stop at the round boundary: the latest checkpoint
                    // (global_place or the previous round) resumes here.
                    interrupted = true;
                    break;
                }
                if inflation_clock.exhausted()
                    || flow_clock.exhausted()
                    || crate::faultinject::fire_inflation_budget(round)
                {
                    trace.record_event(RecoveryEvent::BudgetTruncated {
                        scope: "inflation".into(),
                        at_round: round,
                    });
                    degraded_stage.get_or_insert_with(|| format!("inflate{round}"));
                    break;
                }
                model.write_back(&mut placement);
                let mut source = schedule.source_for(round, opts.inflation_rounds);
                if router_degraded && source == CongestionSource::Router {
                    source = CongestionSource::Probabilistic;
                }
                trace.set_estimator_tier(source.label());
                let t_cong = Instant::now();
                let mut dirty_nets = 0usize;
                let mut router_fallback = false;
                // Holds the collapsed planar view when the router ran in
                // layered (3-D) mode: the inflation and net-weighting
                // consumers are defined over the 2-D gcell grid.
                let mut projected_grid: Option<RouteGrid> = None;
                let grid: &RouteGrid = match source {
                    CongestionSource::Router => {
                        // True routed congestion: full route on the first
                        // router round, incremental reroute of just the
                        // moved cells afterwards.
                        let mut outcome = match route_outcome.take() {
                            None => router.route(design, &placement),
                            Some(prev) => {
                                let moved: Vec<NodeId> = design
                                    .node_ids()
                                    .filter(|&id| {
                                        placement.center(id) != route_centers[id.index()]
                                    })
                                    .collect();
                                router.reroute_incremental(&prev, design, &placement, &moved)
                            }
                        };
                        dirty_nets = outcome.dirty_nets;
                        for id in design.node_ids() {
                            route_centers[id.index()] = placement.center(id);
                        }
                        if outcome.budget_truncated
                            || crate::faultinject::fire_router_budget(round)
                        {
                            // The router returned its current overflow
                            // state; it is still a usable congestion
                            // picture for this round, but later router
                            // rounds fall back to the cheap estimator
                            // rather than keep paying for a router that
                            // cannot finish.
                            trace.record_event(RecoveryEvent::CongestionFallback {
                                round,
                                reason: "router budget".into(),
                            });
                            degraded_stage.get_or_insert_with(|| format!("inflate{round}"));
                            router_fallback = true;
                            router_degraded = true;
                        }
                        crate::faultinject::corrupt_congestion(&mut outcome.grid, round);
                        let routed = &route_outcome.insert(outcome).grid;
                        if routed.has_vias() {
                            &*projected_grid.insert(routed.project_2d())
                        } else {
                            routed
                        }
                    }
                    CongestionSource::Learned => {
                        let grid = slot_grid(&mut congestion_grid, design, &placement);
                        rdp_route::learned::predict_into(
                            grid,
                            design,
                            &placement,
                            opts.routability_opts.weights(),
                            &opts.gp.parallelism,
                        );
                        crate::faultinject::corrupt_congestion(grid, round);
                        &*grid
                    }
                    CongestionSource::Probabilistic => {
                        let grid =
                            refresh_congestion(&mut congestion_grid, design, &placement, &opts);
                        crate::faultinject::corrupt_congestion(grid, round);
                        &*grid
                    }
                };
                let congestion_time = t_cong.elapsed();
                // Corruption canary: non-finite grid state must neither
                // inflate areas (inflate() skips it cell-wise) nor seed
                // the next round's warm start (handled below, after the
                // grid borrow ends).
                let grid_corrupted = grid.non_finite_edges() > 0;
                let mut touched = 0usize;
                if opts.inflate_cells {
                    let mut stats = inflate(&mut model, grid, opts.inflation);
                    stats.source = source;
                    stats.dirty_nets = dirty_nets;
                    stats.congestion_time = congestion_time;
                    stats.congestion_fallback = router_fallback || grid_corrupted;
                    touched += stats.inflated;
                    inflation_stats.push(stats);
                }
                if opts.net_weighting {
                    touched += crate::net_weighting::apply_congestion_weights(
                        &mut model,
                        grid,
                        &base_weights,
                        opts.net_weighting_config,
                    );
                }
                if grid_corrupted {
                    // Discard the poisoned warm state: the next router
                    // round (if any) routes from scratch on a fresh grid,
                    // and the estimator grid is rebuilt on next use.
                    trace.record_event(RecoveryEvent::CongestionFallback {
                        round,
                        reason: "corrupt grid".into(),
                    });
                    degraded_stage.get_or_insert_with(|| format!("inflate{round}"));
                    route_outcome = None;
                    congestion_grid = None;
                }
                if touched == 0 {
                    break;
                }
                match run_global_place(
                    &mut model,
                    gp_regions,
                    &blocked,
                    &GpOptions {
                        max_outer: (opts.gp.max_outer / 2).max(4),
                        ..opts.gp.clone()
                    },
                    &mut trace,
                    &format!("gp/inflate{round}"),
                ) {
                    Ok(out) => {
                        if let Some(stats) = inflation_stats.last_mut() {
                            stats.recoveries = out.recoveries;
                        }
                        gp_outcome = out;
                        model.write_back(&mut placement);
                        rounds_done = round + 1;
                        save_checkpoint(
                            &mut checkpoint,
                            sink.as_deref_mut(),
                            &mut trace,
                            &format!("inflate{round}"),
                            design,
                            &placement,
                            false,
                            &model.area,
                            rounds_done,
                            gp_outcome,
                        );
                    }
                    Err(div) => {
                        // The round's GP diverged beyond recovery: roll the
                        // placement back to the last feasible checkpoint
                        // and stop inflating — downstream stages continue
                        // from the restored state.
                        gp_outcome = div.best;
                        degraded_stage.get_or_insert_with(|| div.stage.clone());
                        if let Some(cp) = &checkpoint {
                            placement = cp.placement.clone();
                            for i in 0..model.node_of.len() {
                                model.set_pos(i, placement.center(model.node_of[i]));
                            }
                            restored_from = Some(cp.stage.clone());
                            trace.record_event(RecoveryEvent::CheckpointRestored {
                                failed_stage: div.stage,
                                from: cp.stage.clone(),
                            });
                        }
                        if let Some(stats) = inflation_stats.last_mut() {
                            stats.recoveries = div.retries;
                            stats.restored = restored_from.is_some();
                        }
                        break;
                    }
                }
            }
            if opts.net_weighting {
                crate::net_weighting::reset_weights(&mut model, &base_weights);
            }
            trace.set_estimator_tier("");
            trace.record_stage("routability", t.elapsed());
        }
        if interrupted {
            let cp = checkpoint.expect("checkpoint exists inside the routability loop");
            return Ok(FlowProgress::Interrupted(cp));
        }
        model.write_back(&mut placement);

        // --- Legalization. ---
        // Resuming from the legal checkpoint skips re-legalization: the
        // placement is already row-legal, and re-running the packer on its
        // own output is not guaranteed to be a bitwise no-op. The resumed
        // result then reports default (zero) legalization stats.
        let legalize_stats = if resume_at_legalize {
            LegalizeStats::default()
        } else {
            let t = Instant::now();
            let stats =
                legalize_with_displacement_par(design, &mut placement, &opts.gp.parallelism);
            trace.record_stage("legalize", t.elapsed());
            save_checkpoint(
                &mut checkpoint,
                sink.as_deref_mut(),
                &mut trace,
                "legalize",
                design,
                &placement,
                true,
                &model.area,
                rounds_done,
                gp_outcome,
            );
            stats
        };
        if cancelled() {
            let cp = checkpoint.expect("checkpoint exists after legalization");
            return Ok(FlowProgress::Interrupted(cp));
        }

        // --- Detailed placement. ---
        let detail_stats = if opts.detailed && flow_clock.exhausted() {
            // Flow budget spent: skip the (optional) polish stage; the
            // legalized checkpoint above is the deliverable.
            trace.record_event(RecoveryEvent::BudgetTruncated {
                scope: "flow".into(),
                at_round: opts.inflation_rounds,
            });
            degraded_stage.get_or_insert_with(|| "detailed".into());
            None
        } else if opts.detailed {
            let t = Instant::now();
            let congestion = if opts.routability {
                Some(&*refresh_congestion(&mut congestion_grid, design, &placement, &opts))
            } else {
                None
            };
            let stats = detailed_place(design, &mut placement, congestion, opts.detail);
            trace.record_stage("detailed", t.elapsed());
            Some(stats)
        } else {
            None
        };

        // Last line of defense: if any downstream stage leaked a
        // non-finite coordinate, roll back to the legalized checkpoint
        // rather than hand the caller a poisoned placement.
        if design.movable_ids().any(|id| !placement.center(id).is_finite()) {
            if let Some(cp) = checkpoint.as_ref().filter(|cp| cp.legal) {
                placement = cp.placement.clone();
                restored_from = Some(cp.stage.clone());
                degraded_stage.get_or_insert_with(|| "detailed".into());
                trace.record_event(RecoveryEvent::CheckpointRestored {
                    failed_stage: "detailed".into(),
                    from: cp.stage.clone(),
                });
            }
        }

        let degraded = degraded_stage.map(|stage| DegradedResult {
            stage,
            restored_from,
            events: trace.events.clone(),
        });
        let hpwl = rdp_db::hpwl::total_hpwl(design, &placement);
        Ok(FlowProgress::Completed(Box::new(PlaceResult {
            placement,
            hpwl,
            gp: gp_outcome,
            legalize: legalize_stats,
            detail: detail_stats,
            inflation: inflation_stats,
            trace,
            degraded,
            elapsed: t_start.elapsed(),
        })))
    }
}

/// Builds the shared congestion grid on first use, then refreshes its
/// usage against the current `placement`.
///
/// Capacities depend only on fixed-node blockages, which never move during
/// placement, so carving them once is enough; every refresh clears the
/// usage and re-deposits, producing bitwise the same estimate as a freshly
/// built grid.
fn refresh_congestion<'a>(
    slot: &'a mut Option<rdp_route::RouteGrid>,
    design: &Design,
    placement: &Placement,
    opts: &PlaceOptions,
) -> &'a mut rdp_route::RouteGrid {
    let grid = slot_grid(slot, design, placement);
    rdp_route::pattern::estimate_congestion_into(grid, design, placement, &opts.gp.parallelism);
    grid
}

/// The shared congestion grid, built on first use. The probabilistic and
/// learned tiers both fully clear and re-deposit the usage, so they can
/// alternate on the same grid without interference.
fn slot_grid<'a>(
    slot: &'a mut Option<rdp_route::RouteGrid>,
    design: &Design,
    placement: &Placement,
) -> &'a mut rdp_route::RouteGrid {
    slot.get_or_insert_with(|| rdp_route::RouteGrid::from_design(design, placement))
}

/// Snapshots `placement` as the latest [`FlowCheckpoint`] and records the
/// save in the trace (checkpoint granularity: one per completed stage,
/// latest wins — the flow is monotonic, so newest feasible is best). The
/// snapshot also captures the resume state (density areas, completed
/// rounds, GP outcome) and is offered to the caller's checkpoint sink.
#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    slot: &mut Option<FlowCheckpoint>,
    sink: Option<&mut (dyn FnMut(&FlowCheckpoint) + Send + '_)>,
    trace: &mut Trace,
    stage: &str,
    design: &Design,
    placement: &Placement,
    legal: bool,
    density_area: &[f64],
    rounds_done: usize,
    gp: GpOutcome,
) {
    let hpwl = rdp_db::hpwl::total_hpwl(design, placement);
    trace.record_event(RecoveryEvent::CheckpointSaved { stage: stage.to_owned(), hpwl });
    let cp = FlowCheckpoint {
        stage: stage.to_owned(),
        placement: placement.clone(),
        hpwl,
        legal,
        density_area: density_area.to_vec(),
        rounds_done,
        gp,
    };
    if let Some(sink) = sink {
        sink(&cp);
    }
    *slot = Some(cp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::validate::check_legal;
    use rdp_gen::{generate, GeneratorConfig};

    #[test]
    fn full_flow_on_tiny_design_is_legal() {
        let bench = generate(&GeneratorConfig::tiny("pf", 41)).unwrap();
        let result = Placer::new(&bench.design, PlaceOptions::fast())
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        let report = check_legal(&bench.design, &result.placement, 20);
        assert!(
            report.is_legal(),
            "violations: {:?} overlap {}",
            report.violations,
            report.total_overlap_area
        );
        assert_eq!(result.legalize.failed, 0);
        assert!(result.hpwl > 0.0);
        assert!(!result.trace.records.is_empty());
        assert!(!result.trace.stages.is_empty());
    }

    #[test]
    fn placement_beats_random_scatter_on_hpwl() {
        let bench = generate(&GeneratorConfig::tiny("pw", 42)).unwrap();
        let result = Placer::new(&bench.design, PlaceOptions::fast())
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        // Random legal-ish scatter as the null hypothesis.
        let mut random = bench.placement.clone();
        let mut rng = rdp_geom::rng::Rng::seed_from_u64(7);
        let die = bench.design.die();
        for id in bench.design.movable_ids() {
            let (w, h) = random.dims(&bench.design, id);
            random.set_center(
                id,
                rdp_geom::Point::new(
                    rng.gen_range(die.xl + w / 2.0..die.xh - w / 2.0),
                    rng.gen_range(die.yl + h / 2.0..die.yh - h / 2.0),
                ),
            );
        }
        let random_hpwl = rdp_db::hpwl::total_hpwl(&bench.design, &random);
        assert!(
            result.hpwl < 0.6 * random_hpwl,
            "placed {} vs random {}",
            result.hpwl,
            random_hpwl
        );
    }

    #[test]
    fn hierarchical_flow_satisfies_fences() {
        let bench = generate(&GeneratorConfig::hierarchical("ph", 43, 2)).unwrap();
        let result = Placer::new(&bench.design, PlaceOptions::fast())
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        let report = check_legal(&bench.design, &result.placement, 50);
        assert_eq!(
            report.fence_violations,
            0,
            "fence violations: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let bench = generate(&GeneratorConfig::tiny("pd", 44)).unwrap();
        let r1 = Placer::new(&bench.design, PlaceOptions::fast())
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        let r2 = Placer::new(&bench.design, PlaceOptions::fast())
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        assert_eq!(r1.hpwl, r2.hpwl);
    }

    #[test]
    fn error_on_unplaceable_designs() {
        use rdp_db::{DesignBuilder, NodeKind};
        use rdp_geom::{Point, Rect};
        let mut b = DesignBuilder::new("e");
        b.die(Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 10);
        let f1 = b.add_node("f1", 1.0, 1.0, NodeKind::Fixed).unwrap();
        let f2 = b.add_node("f2", 1.0, 1.0, NodeKind::Fixed).unwrap();
        let n = b.add_net("n", 1.0);
        b.add_pin(n, f1, Point::ORIGIN);
        b.add_pin(n, f2, Point::ORIGIN);
        let d = b.finish().unwrap();
        let err = Placer::new(&d, PlaceOptions::fast()).run().unwrap_err();
        assert_eq!(err, PlaceError::NothingToPlace);
        assert!(err.to_string().contains("no movable"));
    }

    #[test]
    fn continuous_rotation_flow_is_legal() {
        let bench = generate(&GeneratorConfig::tiny("pcr", 45)).unwrap();
        let result = Placer::new(&bench.design, PlaceOptions::fast().with_continuous_rotation())
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        let report = check_legal(&bench.design, &result.placement, 20);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
        assert!(result.hpwl > 0.0);
    }

    #[test]
    fn router_congestion_mode_is_legal_and_reports_dirty_nets() {
        let bench = generate(&GeneratorConfig::tiny("prc", 46)).unwrap();
        let result = Placer::new(&bench.design, PlaceOptions::fast().with_router_congestion())
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        let report = check_legal(&bench.design, &result.placement, 20);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
        // First round routes from scratch: every net is dirty.
        let first = &result.inflation[0];
        assert_eq!(first.dirty_nets, bench.design.nets().len());
        assert!(first.congestion_time.as_nanos() > 0);
        // Later rounds go through the incremental path; dirtying more nets
        // than the design has would mean the bookkeeping is broken.
        for s in &result.inflation[1..] {
            assert!(s.dirty_nets <= bench.design.nets().len());
        }
    }

    #[test]
    fn router_congestion_mode_is_deterministic() {
        let bench = generate(&GeneratorConfig::tiny("prd", 47)).unwrap();
        let run = |threads: usize| {
            Placer::new(
                &bench.design,
                PlaceOptions::fast().with_router_congestion().with_threads(threads),
            )
            .with_initial(bench.placement.clone())
            .run()
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
        for (sa, sb) in a.inflation.iter().zip(&b.inflation) {
            assert_eq!(sa.dirty_nets, sb.dirty_nets);
            assert_eq!(sa.inflated, sb.inflated);
        }
    }

    #[test]
    fn learned_estimator_flow_is_legal_and_deterministic() {
        let bench = generate(&GeneratorConfig::tiny("ple", 48)).unwrap();
        let run = |threads: usize| {
            Placer::new(
                &bench.design,
                PlaceOptions::fast()
                    .with_estimator(CongestionSchedule::Uniform(CongestionSource::Learned))
                    .with_threads(threads),
            )
            .with_initial(bench.placement.clone())
            .run()
            .unwrap()
        };
        let a = run(1);
        let report = check_legal(&bench.design, &a.placement, 20);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
        assert!(a.inflation.iter().all(|s| s.source == CongestionSource::Learned));
        // The learned tier inherits the kernel determinism contract.
        let b = run(4);
        assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
        // The trace CSV carries the tier of each inflation round.
        let csv = a.trace.to_csv();
        assert!(csv.lines().next().unwrap().ends_with(",estimator_tier"));
        assert!(csv.lines().any(|l| l.starts_with("gp/inflate") && l.ends_with(",learned")));
    }

    #[test]
    fn ladder_schedule_mixes_tiers() {
        let bench = generate(&GeneratorConfig::tiny("pla", 49)).unwrap();
        let mut opts = PlaceOptions::fast().with_estimator(CongestionSchedule::auto());
        opts.inflation_rounds = 2;
        let result = Placer::new(&bench.design, opts)
            .with_initial(bench.placement.clone())
            .run()
            .unwrap();
        let sources: Vec<_> = result.inflation.iter().map(|s| s.source).collect();
        assert_eq!(sources[0], CongestionSource::Learned);
        // The loop may stop early if nothing inflates, but a second round
        // must be the router tail.
        if let Some(s) = sources.get(1) {
            assert_eq!(*s, CongestionSource::Router);
        }
    }

    #[test]
    fn deprecated_router_bool_matches_uniform_router_schedule() {
        let bench = generate(&GeneratorConfig::tiny("psh", 50)).unwrap();
        let run = |opts: PlaceOptions| {
            Placer::new(&bench.design, opts)
                .with_initial(bench.placement.clone())
                .run()
                .unwrap()
        };
        let via_shim = run(PlaceOptions::fast().with_router_congestion());
        let via_schedule = run(PlaceOptions::fast().with_estimator(CongestionSchedule::Uniform(
            CongestionSource::Router,
        )));
        assert_eq!(via_shim.hpwl.to_bits(), via_schedule.hpwl.to_bits());
        assert!(via_shim.inflation.iter().all(|s| s.source == CongestionSource::Router));
    }

    #[test]
    fn schedule_source_for_semantics() {
        let auto = CongestionSchedule::auto();
        assert_eq!(auto.source_for(0, 3), CongestionSource::Learned);
        assert_eq!(auto.source_for(1, 3), CongestionSource::Learned);
        assert_eq!(auto.source_for(2, 3), CongestionSource::Router);
        let per = CongestionSchedule::PerRound(vec![
            CongestionSource::Probabilistic,
            CongestionSource::Learned,
        ]);
        assert_eq!(per.source_for(0, 4), CongestionSource::Probabilistic);
        assert_eq!(per.source_for(1, 4), CongestionSource::Learned);
        assert_eq!(per.source_for(3, 4), CongestionSource::Learned, "repeats the last entry");
        assert_eq!(
            CongestionSchedule::PerRound(vec![]).source_for(0, 2),
            CongestionSource::Probabilistic
        );
        assert_eq!(CongestionSchedule::parse("auto"), Some(CongestionSchedule::auto()));
        assert_eq!(
            CongestionSchedule::parse("learned"),
            Some(CongestionSchedule::Uniform(CongestionSource::Learned))
        );
        assert_eq!(CongestionSchedule::parse("bogus"), None);
        // An explicit schedule wins over the deprecated bool; the bool
        // alone maps to a uniform router schedule.
        let shim = GpRoutabilityOptions::default();
        assert_eq!(shim.effective_schedule(), CongestionSchedule::default());
        let mut shim = GpRoutabilityOptions::default();
        #[allow(deprecated)]
        {
            shim.use_router_congestion = true;
        }
        assert_eq!(
            shim.effective_schedule(),
            CongestionSchedule::Uniform(CongestionSource::Router)
        );
        let explicit = shim
            .to_builder()
            .schedule(CongestionSchedule::Uniform(CongestionSource::Learned))
            .build();
        assert_eq!(
            explicit.effective_schedule(),
            CongestionSchedule::Uniform(CongestionSource::Learned)
        );
    }

    #[test]
    fn baseline_presets_differ_in_behavior() {
        let fast = PlaceOptions::fast();
        assert!(fast.routability);
        let b1 = PlaceOptions::fast().wirelength_driven();
        assert!(!b1.routability);
        assert_eq!(b1.detail.congestion_weight, 0.0);
        let b2 = PlaceOptions::fast().fence_blind();
        assert!(!b2.hierarchy_aware);
        let b3 = PlaceOptions::fast().flat();
        assert!(!b3.multilevel);
        let b4 = PlaceOptions::fast().with_wirelength(crate::WirelengthModel::Lse);
        assert_eq!(b4.gp.wirelength, crate::WirelengthModel::Lse);
        let b5 = PlaceOptions::fast().without_rotation();
        assert!(!b5.macro_rotation);
    }
}
