//! Row-segment construction: the free row pieces between obstacles, tagged
//! with their covering fence region.

use rdp_db::{Design, NodeId, RegionId};
use rdp_geom::{Interval, Rect};

/// A free piece of one placement row.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Index into `design.rows()`.
    pub row: usize,
    /// Free x span (site-aligned).
    pub interval: Interval,
    /// The fence covering this piece (`None` = outside all fences).
    pub region: Option<RegionId>,
    /// Width already claimed by assigned cells (site-quantized).
    pub used: f64,
    /// Cells assigned to this segment (packed by Abacus afterwards).
    pub cells: Vec<NodeId>,
}

impl Segment {
    /// Free width remaining.
    pub fn free(&self) -> f64 {
        (self.interval.length() - self.used).max(0.0)
    }
}

/// Splits every row around `obstacles` and fence boundaries.
///
/// An obstacle removes its x span from any row it vertically overlaps.
/// Fence rects split segments at their x boundaries; a piece whose row lies
/// vertically inside a fence rect is tagged with that region. Segment
/// bounds are snapped inward to site boundaries.
pub fn build_segments(design: &Design, obstacles: &[Rect]) -> Vec<Segment> {
    let mut out = Vec::new();
    for (ri, row) in design.rows().iter().enumerate() {
        let row_rect = row.rect();
        // Start with the full row, subtract obstacles.
        let mut pieces: Vec<Interval> = vec![row.span()];
        for ob in obstacles {
            if ob.yh <= row_rect.yl + 1e-9 || ob.yl >= row_rect.yh - 1e-9 {
                continue; // no vertical overlap
            }
            let cut = Interval::new(ob.xl, ob.xh);
            let mut next = Vec::with_capacity(pieces.len() + 1);
            for p in pieces {
                if cut.hi <= p.lo + 1e-9 || cut.lo >= p.hi - 1e-9 {
                    next.push(p);
                    continue;
                }
                if cut.lo > p.lo + 1e-9 {
                    next.push(Interval::new(p.lo, cut.lo));
                }
                if cut.hi < p.hi - 1e-9 {
                    next.push(Interval::new(cut.hi, p.hi));
                }
            }
            pieces = next;
        }
        // Split at fence x-boundaries and tag.
        for piece in pieces {
            let mut xs = vec![piece.lo, piece.hi];
            for region in design.regions() {
                for r in region.rects() {
                    if r.yl <= row_rect.yl + 1e-9 && r.yh >= row_rect.yh - 1e-9 {
                        for x in [r.xl, r.xh] {
                            if x > piece.lo + 1e-9 && x < piece.hi - 1e-9 {
                                xs.push(x);
                            }
                        }
                    }
                }
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            for w in xs.windows(2) {
                let mid = 0.5 * (w[0] + w[1]);
                let region = design
                    .regions()
                    .iter()
                    .enumerate()
                    .find(|(_, reg)| {
                        reg.rects().iter().any(|r| {
                            r.yl <= row_rect.yl + 1e-9
                                && r.yh >= row_rect.yh - 1e-9
                                && mid >= r.xl
                                && mid <= r.xh
                        })
                    })
                    .map(|(i, _)| RegionId::from_index(i));
                // Snap inward to sites.
                let site = row.site_width();
                let lo = row.x_min() + ((w[0] - row.x_min()) / site).ceil() * site;
                let hi = row.x_min() + ((w[1] - row.x_min()) / site).floor() * site;
                if hi - lo >= site - 1e-9 {
                    out.push(Segment {
                        row: ri,
                        interval: Interval::new(lo, hi),
                        region,
                        used: 0.0,
                        cells: Vec::new(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind};
    use rdp_geom::Point;

    fn design_with_fence() -> Design {
        let mut b = DesignBuilder::new("seg");
        b.die(Rect::new(0.0, 0.0, 100.0, 20.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 100);
        b.add_row(10.0, 10.0, 1.0, 0.0, 100);
        let a = b.add_node("a", 4.0, 10.0, NodeKind::Movable).unwrap();
        let c = b.add_node("c", 4.0, 10.0, NodeKind::Movable).unwrap();
        let r = b.add_region("R", vec![Rect::new(40.0, 0.0, 70.0, 20.0)]);
        b.assign_region(a, r);
        let n = b.add_net("n", 1.0);
        b.add_pin(n, a, Point::ORIGIN);
        b.add_pin(n, c, Point::ORIGIN);
        b.finish().unwrap()
    }

    #[test]
    fn fence_splits_and_tags_segments() {
        let d = design_with_fence();
        let segs = build_segments(&d, &[]);
        // Each row: [0,40) none, [40,70) region, [70,100) none.
        assert_eq!(segs.len(), 6);
        let fenced: Vec<_> = segs.iter().filter(|s| s.region.is_some()).collect();
        assert_eq!(fenced.len(), 2);
        for s in fenced {
            assert_eq!(s.interval, Interval::new(40.0, 70.0));
        }
    }

    #[test]
    fn obstacles_carve_rows() {
        let d = design_with_fence();
        // Obstacle over row 0 only, x 10..20.
        let segs = build_segments(&d, &[Rect::new(10.0, 0.0, 20.0, 10.0)]);
        let row0: Vec<_> = segs.iter().filter(|s| s.row == 0).collect();
        // Row 0: [0,10) [20,40) [40,70)R [70,100) = 4 pieces.
        assert_eq!(row0.len(), 4);
        assert!(row0.iter().any(|s| s.interval == Interval::new(0.0, 10.0)));
        assert!(row0.iter().any(|s| s.interval == Interval::new(20.0, 40.0)));
        // Row 1 untouched: 3 pieces.
        assert_eq!(segs.iter().filter(|s| s.row == 1).count(), 3);
    }

    #[test]
    fn segments_snap_to_sites() {
        let d = design_with_fence();
        let segs = build_segments(&d, &[Rect::new(10.3, 0.0, 20.7, 10.0)]);
        for s in segs.iter().filter(|s| s.row == 0) {
            assert!((s.interval.lo.fract()).abs() < 1e-9, "lo {}", s.interval.lo);
            assert!((s.interval.hi.fract()).abs() < 1e-9, "hi {}", s.interval.hi);
        }
        // The cut got wider, not narrower: free pieces avoid the obstacle.
        assert!(segs
            .iter()
            .filter(|s| s.row == 0)
            .all(|s| s.interval.hi <= 10.0 + 1e-9 || s.interval.lo >= 21.0 - 1e-9));
    }

    #[test]
    fn tiny_slivers_are_dropped() {
        let d = design_with_fence();
        // Obstacle leaving a 0.4-site sliver at the left.
        let segs = build_segments(&d, &[Rect::new(0.4, 0.0, 39.0, 10.0)]);
        assert!(segs
            .iter()
            .filter(|s| s.row == 0)
            .all(|s| s.interval.length() >= 1.0 - 1e-9));
    }

    #[test]
    fn free_tracks_usage() {
        let mut s = Segment {
            row: 0,
            interval: Interval::new(0.0, 10.0),
            region: None,
            used: 0.0,
            cells: vec![],
        };
        assert_eq!(s.free(), 10.0);
        s.used = 7.0;
        assert_eq!(s.free(), 3.0);
        s.used = 15.0;
        assert_eq!(s.free(), 0.0);
    }
}
