//! Macro legalization: largest-first snapping to non-overlapping, row- and
//! site-aligned positions.

use rdp_db::{Design, Placement};
use rdp_geom::{Point, Rect};

/// Legalizes all movable macros in place. `fixed_obstacles` are the rects
/// of fixed blocks. Returns the final macro rects (for use as obstacles in
/// standard-cell legalization).
///
/// Strategy: macros in decreasing area order; for each, search outward
/// from its desired (snapped) position over row-aligned candidate spots
/// and take the closest one that fits on-die (inside its fence, if any)
/// without overlapping anything already legal.
pub fn legalize_macros(
    design: &Design,
    placement: &mut Placement,
    fixed_obstacles: &[Rect],
) -> Vec<Rect> {
    let row_h = design.row_height().unwrap_or(1.0);
    let site = design
        .rows()
        .first()
        .map(|r| r.site_width())
        .unwrap_or(1.0);
    let die = design.die();

    let mut macros: Vec<_> = design.macro_ids().collect();
    macros.sort_by(|&a, &b| {
        design
            .node(b)
            .area()
            .partial_cmp(&design.node(a).area())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut placed: Vec<Rect> = Vec::with_capacity(macros.len());
    for id in macros.iter().copied() {
        let (w, h) = placement.dims(design, id);
        let desired = placement.lower_left(design, id);
        // Candidate containment area: die, or fence bbox when fenced.
        let bounds = match design.node(id).region() {
            Some(r) => design.region(r).bounding_box().intersection(die),
            None => die,
        };
        let snap = |p: Point| -> Point {
            Point::new(
                (p.x / site).round() * site,
                (p.y / row_h).round() * row_h,
            )
        };
        let clamp_ll = |p: Point| -> Point {
            Point::new(
                rdp_geom::clamp(p.x, bounds.xl, (bounds.xh - w).max(bounds.xl)),
                rdp_geom::clamp(p.y, bounds.yl, (bounds.yh - h).max(bounds.yl)),
            )
        };
        let start = snap(clamp_ll(desired));
        let own_region = design.node(id).region();
        let fits = |ll: Point, placed: &[Rect]| -> bool {
            let r = Rect::from_origin_size(ll, w, h);
            bounds.contains_rect(r)
                && fixed_obstacles.iter().all(|o| !o.intersects(r))
                && placed.iter().all(|o| !o.intersects(r))
                // An unfenced macro must not squat on a (foreign) fence —
                // that capacity belongs to the fence's members.
                && design.regions().iter().enumerate().all(|(gi, region)| {
                    Some(rdp_db::RegionId::from_index(gi)) == own_region
                        || region.rects().iter().all(|fr| !fr.intersects(r))
                })
        };
        // Ring search over (rows, site-steps).
        let step_x = (site * 4.0).max(w / 8.0);
        let max_ring = 4 * ((die.width() / step_x) as i64 + (die.height() / row_h) as i64);
        let mut found = None;
        'search: for ring in 0..=max_ring {
            for dy in -ring..=ring {
                let rem = ring - dy.abs();
                for dx in [-rem, rem] {
                    let cand = snap(clamp_ll(Point::new(
                        start.x + dx as f64 * step_x,
                        start.y + dy as f64 * row_h,
                    )));
                    if fits(cand, &placed) {
                        found = Some(cand);
                        break 'search;
                    }
                    if rem == 0 {
                        break;
                    }
                }
            }
        }
        let ll = found.unwrap_or(start);
        placement.set_lower_left(design, id, ll);
        placed.push(Rect::from_origin_size(ll, w, h));
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind};

    fn macro_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("ml");
        b.die(Rect::new(0.0, 0.0, 200.0, 200.0));
        for r in 0..20 {
            b.add_row(f64::from(r) * 10.0, 10.0, 1.0, 0.0, 200);
        }
        let mut ids = Vec::new();
        for i in 0..n {
            ids.push(b.add_node(format!("m{i}"), 40.0, 40.0, NodeKind::Movable).unwrap());
        }
        let t = b.add_node("t", 1.0, 1.0, NodeKind::FixedNi).unwrap();
        let net = b.add_net("n", 1.0);
        b.add_pin(net, ids[0], Point::ORIGIN);
        b.add_pin(net, t, Point::ORIGIN);
        b.finish().unwrap()
    }

    #[test]
    fn overlapping_macros_separate() {
        let d = macro_design(4);
        let mut pl = Placement::new_centered(&d);
        // All four at the center, overlapping.
        let rects = legalize_macros(&d, &mut pl, &[]);
        assert_eq!(rects.len(), 4);
        for (i, a) in rects.iter().enumerate() {
            assert!(d.die().contains_rect(*a), "macro {i} off-die: {a}");
            for b in &rects[i + 1..] {
                assert_eq!(a.overlap_area(*b), 0.0, "macros overlap: {a} vs {b}");
            }
            // Row/site alignment.
            assert!((a.yl / 10.0).fract().abs() < 1e-9);
            assert!(a.xl.fract().abs() < 1e-9);
        }
    }

    #[test]
    fn avoids_fixed_obstacles() {
        let d = macro_design(1);
        let mut pl = Placement::new_centered(&d);
        let obstacle = Rect::new(80.0, 80.0, 120.0, 120.0);
        let rects = legalize_macros(&d, &mut pl, &[obstacle]);
        assert_eq!(rects[0].overlap_area(obstacle), 0.0);
    }

    #[test]
    fn legal_macro_stays_near_its_spot() {
        let d = macro_design(1);
        let mut pl = Placement::new_centered(&d);
        let m = d.find_node("m0").unwrap();
        pl.set_lower_left(&d, m, Point::new(20.0, 30.0));
        legalize_macros(&d, &mut pl, &[]);
        assert_eq!(pl.lower_left(&d, m), Point::new(20.0, 30.0));
    }

    #[test]
    fn fenced_macro_lands_in_fence() {
        let mut b = DesignBuilder::new("mf");
        b.die(Rect::new(0.0, 0.0, 200.0, 200.0));
        for r in 0..20 {
            b.add_row(f64::from(r) * 10.0, 10.0, 1.0, 0.0, 200);
        }
        let m = b.add_node("m", 40.0, 40.0, NodeKind::Movable).unwrap();
        let t = b.add_node("t", 1.0, 1.0, NodeKind::FixedNi).unwrap();
        let reg = b.add_region("R", vec![Rect::new(100.0, 100.0, 200.0, 200.0)]);
        b.assign_region(m, reg);
        let net = b.add_net("n", 1.0);
        b.add_pin(net, m, Point::ORIGIN);
        b.add_pin(net, t, Point::ORIGIN);
        let d = b.finish().unwrap();
        let mut pl = Placement::new_centered(&d);
        pl.set_lower_left(&d, m, Point::new(10.0, 10.0)); // far outside fence
        let rects = legalize_macros(&d, &mut pl, &[]);
        assert!(
            Rect::new(100.0, 100.0, 200.0, 200.0).contains_rect(rects[0]),
            "macro outside fence: {}",
            rects[0]
        );
    }
}
