//! Abacus: optimal single-row packing by dynamic cluster merging
//! (Spindler, Schlichtmann, Johannes — the standard row legalizer).
//!
//! Given the cells assigned to one segment and their desired x positions,
//! Abacus places them without overlap, minimizing the total squared
//! displacement, by greedily growing and merging *clusters* whose optimal
//! position is the weighted mean of their members' desired positions.

use super::segments::Segment;
use rdp_db::{Design, NodeId, Placement};
use rdp_geom::Point;

#[derive(Debug, Clone)]
struct Cluster {
    /// Total weight (one per cell here; pin counts would also be valid).
    e: f64,
    /// Σ e·(desired − offset-in-cluster).
    q: f64,
    /// Total width.
    w: f64,
    /// Current optimal left edge.
    x: f64,
    /// First cell index (into the segment's ordered cell list).
    first: usize,
    /// One past the last cell index.
    last: usize,
}

/// Packs `seg.cells` into the segment and writes final positions
/// (lower-left) into `placement`. Cells are placed at the segment's row
/// with site-aligned x.
pub fn pack_segment(design: &Design, placement: &mut Placement, seg: &mut Segment) {
    for (id, p) in pack_positions(design, placement, seg) {
        placement.set_lower_left(design, id, p);
    }
}

/// Computes the packed lower-left position of every cell in `seg` without
/// touching `placement`. Reads only the segment's own cells' current
/// positions, so distinct segments (which hold disjoint cell sets) can be
/// packed concurrently and the results applied afterwards in any order —
/// the combined effect is identical to running [`pack_segment`] serially.
pub fn pack_positions(
    design: &Design,
    placement: &Placement,
    seg: &Segment,
) -> Vec<(NodeId, Point)> {
    if seg.cells.is_empty() {
        return Vec::new();
    }
    let row = design.rows()[seg.row];
    let site = row.site_width();
    let quant = |w: f64| (w / site).ceil() * site;

    // Order by desired x.
    let mut cells: Vec<NodeId> = seg.cells.clone();
    cells.sort_by(|&a, &b| {
        placement
            .lower_left(design, a)
            .x
            .total_cmp(&placement.lower_left(design, b).x)
            .then(a.cmp(&b))
    });
    let desired: Vec<f64> = cells
        .iter()
        .map(|&id| placement.lower_left(design, id).x)
        .collect();
    let widths: Vec<f64> = cells
        .iter()
        .map(|&id| quant(design.node(id).width()))
        .collect();

    let lo = seg.interval.lo;
    let hi = seg.interval.hi;

    let mut clusters: Vec<Cluster> = Vec::with_capacity(cells.len());
    for i in 0..cells.len() {
        let mut c = Cluster {
            e: 1.0,
            q: desired[i],
            w: widths[i],
            x: desired[i],
            first: i,
            last: i + 1,
        };
        c.x = rdp_geom::clamp(c.q / c.e, lo, (hi - c.w).max(lo));
        // Merge while overlapping the previous cluster.
        while let Some(prev) = clusters.last() {
            if prev.x + prev.w > c.x + 1e-12 {
                let prev = clusters.pop().expect("nonempty");
                let mut merged = Cluster {
                    e: prev.e + c.e,
                    q: prev.q + c.q - c.e * prev.w,
                    w: prev.w + c.w,
                    x: 0.0,
                    first: prev.first,
                    last: c.last,
                };
                // q accounting: members of `c` sit at offset prev.w within
                // the merged cluster, so their desired positions shift.
                merged.x = rdp_geom::clamp(merged.q / merged.e, lo, (hi - merged.w).max(lo));
                c = merged;
            } else {
                break;
            }
        }
        clusters.push(c);
    }

    // Emit positions. Snapping each cluster independently can round two
    // abutting clusters into overlap, so pack left-to-right against the
    // previous cluster's end, then sweep right-to-left to pull any overflow
    // back inside the segment (total width ≤ segment length guarantees a
    // feasible packing on the site grid).
    let mut starts: Vec<f64> = Vec::with_capacity(clusters.len());
    let mut prev_end = lo;
    for c in &clusters {
        let snapped = lo + ((c.x - lo) / site).round() * site;
        let start = snapped.max(prev_end);
        starts.push(start);
        prev_end = start + c.w;
    }
    let mut limit = lo + ((hi - lo) / site).floor() * site;
    for (ci, c) in clusters.iter().enumerate().rev() {
        if starts[ci] + c.w > limit + 1e-9 {
            starts[ci] = (limit - c.w).max(lo);
        }
        limit = starts[ci];
    }
    let mut packed = Vec::with_capacity(cells.len());
    for (ci, c) in clusters.iter().enumerate() {
        let mut x = starts[ci];
        for i in c.first..c.last {
            packed.push((cells[i], Point::new(x, row.y())));
            x += widths[i];
        }
    }
    packed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind, Placement};
    use rdp_geom::{Interval, Rect};

    fn design(n: usize, width: f64) -> rdp_db::Design {
        let mut b = DesignBuilder::new("ab");
        b.die(Rect::new(0.0, 0.0, 100.0, 10.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 100);
        let mut prev = None;
        for i in 0..n {
            let id = b.add_node(format!("c{i}"), width, 10.0, NodeKind::Movable).unwrap();
            if let Some(p) = prev {
                let net = b.add_net(format!("n{i}"), 1.0);
                b.add_pin(net, p, rdp_geom::Point::ORIGIN);
                b.add_pin(net, id, rdp_geom::Point::ORIGIN);
            }
            prev = Some(id);
        }
        b.finish().unwrap()
    }

    fn segment_with(d: &rdp_db::Design, lo: f64, hi: f64) -> Segment {
        Segment {
            row: 0,
            interval: Interval::new(lo, hi),
            region: None,
            used: 0.0,
            cells: d.node_ids().filter(|&i| d.node(i).is_std_cell()).collect(),
        }
    }

    fn assert_packed(d: &rdp_db::Design, pl: &Placement, seg: &Segment) {
        let mut rects: Vec<_> = seg
            .cells
            .iter()
            .map(|&id| pl.rect(d, id))
            .collect();
        rects.sort_by(|a, b| a.xl.total_cmp(&b.xl));
        for w in rects.windows(2) {
            assert!(
                w[0].xh <= w[1].xl + 1e-9,
                "overlap: {} and {}",
                w[0],
                w[1]
            );
        }
        for r in &rects {
            assert!(r.xl >= seg.interval.lo - 1e-9 && r.xh <= seg.interval.hi + 1e-9);
            assert!((r.xl.fract()).abs() < 1e-9, "off-site {}", r.xl);
            assert_eq!(r.yl, 0.0);
        }
    }

    #[test]
    fn separates_overlapping_cells() {
        let d = design(5, 4.0);
        let mut pl = Placement::new_centered(&d);
        // Everyone wants x = 48.
        for id in d.node_ids() {
            pl.set_lower_left(&d, id, rdp_geom::Point::new(48.0, 0.0));
        }
        let mut seg = segment_with(&d, 0.0, 100.0);
        pack_segment(&d, &mut pl, &mut seg);
        assert_packed(&d, &pl, &seg);
        // Cluster centers on the common desired position.
        let min_x = seg.cells.iter().map(|&id| pl.lower_left(&d, id).x).fold(f64::INFINITY, f64::min);
        let max_x = seg.cells.iter().map(|&id| pl.rect(&d, id).xh).fold(0.0f64, f64::max);
        assert!((min_x - 38.0).abs() <= 2.0, "cluster start {min_x}");
        assert!((max_x - 58.0).abs() <= 2.0, "cluster end {max_x}");
    }

    #[test]
    fn well_separated_cells_do_not_move() {
        let d = design(3, 4.0);
        let mut pl = Placement::new_centered(&d);
        for (i, id) in d.node_ids().enumerate() {
            pl.set_lower_left(&d, id, rdp_geom::Point::new(10.0 + 20.0 * i as f64, 0.0));
        }
        let before: Vec<f64> = d.node_ids().map(|id| pl.lower_left(&d, id).x).collect();
        let mut seg = segment_with(&d, 0.0, 100.0);
        pack_segment(&d, &mut pl, &mut seg);
        let after: Vec<f64> = d.node_ids().map(|id| pl.lower_left(&d, id).x).collect();
        assert_eq!(before, after, "already-legal cells must not move");
    }

    #[test]
    fn boundary_clamping() {
        let d = design(3, 10.0);
        let mut pl = Placement::new_centered(&d);
        // Everyone wants x = 95: must clamp into [0, 100] as a 30-wide block.
        for id in d.node_ids() {
            pl.set_lower_left(&d, id, rdp_geom::Point::new(95.0, 0.0));
        }
        let mut seg = segment_with(&d, 0.0, 100.0);
        pack_segment(&d, &mut pl, &mut seg);
        assert_packed(&d, &pl, &seg);
        let max_x = seg.cells.iter().map(|&id| pl.rect(&d, id).xh).fold(0.0f64, f64::max);
        assert!(max_x <= 100.0 + 1e-9);
        let min_x = seg.cells.iter().map(|&id| pl.lower_left(&d, id).x).fold(f64::INFINITY, f64::min);
        assert!((min_x - 70.0).abs() < 1e-9);
    }

    #[test]
    fn exactly_full_segment_packs() {
        let d = design(10, 5.0);
        let mut pl = Placement::new_centered(&d);
        for (i, id) in d.node_ids().enumerate() {
            pl.set_lower_left(&d, id, rdp_geom::Point::new(3.0 * i as f64, 0.0));
        }
        let mut seg = segment_with(&d, 0.0, 50.0);
        pack_segment(&d, &mut pl, &mut seg);
        assert_packed(&d, &pl, &seg);
    }

    #[test]
    fn empty_segment_is_noop() {
        let d = design(1, 4.0);
        let mut pl = Placement::new_centered(&d);
        let mut seg = Segment {
            row: 0,
            interval: Interval::new(0.0, 10.0),
            region: None,
            used: 0.0,
            cells: vec![],
        };
        pack_segment(&d, &mut pl, &mut seg); // must not panic
    }
}
