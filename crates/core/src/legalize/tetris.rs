//! Tetris-style greedy segment assignment for standard cells.

use super::segments::Segment;
use rdp_db::{Design, NodeId, Placement};
use rdp_geom::grid_index::BucketGrid;
use rdp_geom::Rect;

/// Site-quantized width a cell occupies in a row.
fn site_width(design: &Design, id: NodeId, site: f64) -> f64 {
    (design.node(id).width() / site).ceil() * site
}

/// Assigns every standard cell to a segment of matching fence region,
/// minimizing `|Δy| + |Δx|` displacement subject to remaining capacity.
/// Returns the number of cells that found no segment (capacity exhausted
/// everywhere — 0 on any sanely-sized design).
///
/// Candidate segments come from a bucketed spatial index queried around
/// each cell's desired position, so the per-cell work is a local window
/// rather than a scan of every segment. The query cost `dx + 2·dy` never
/// undercuts the L1 distance to a segment's span, so the windowed search
/// returns the same `(cost, index)`-minimal segment as a full scan —
/// including the lowest-segment-index tie-break.
pub fn assign_cells(design: &Design, placement: &Placement, segments: &mut [Segment]) -> usize {
    let site = design
        .rows()
        .first()
        .map(|r| r.site_width())
        .unwrap_or(1.0);

    // Cells ordered by desired x (the classic Tetris sweep) so left space
    // fills left-to-right and displacement stays local.
    let mut cells: Vec<NodeId> = design
        .node_ids()
        .filter(|&id| design.node(id).is_std_cell())
        .collect();
    cells.sort_by(|&a, &b| {
        placement
            .center(a)
            .x
            .total_cmp(&placement.center(b).x)
            .then(a.cmp(&b))
    });

    // Each segment is a zero-height rect at its row's y; feasibility
    // (region match, remaining capacity) lives in the query cost so the
    // index never needs rebuilding as segments fill up.
    let row_ys: Vec<f64> = segments
        .iter()
        .map(|s| design.rows()[s.row].y())
        .collect();
    let res = ((segments.len() as f64).sqrt().ceil() as usize).clamp(4, 256);
    let mut index = BucketGrid::new(design.die(), res, res);
    for (seg, &row_y) in segments.iter().zip(&row_ys) {
        index.insert(Rect::new(seg.interval.lo, row_y, seg.interval.hi, row_y));
    }

    let mut failed = 0;
    for id in cells {
        let w = site_width(design, id, site);
        let desired = placement.lower_left(design, id);
        let region = design.node(id).region();
        let best = index.nearest_by(desired, |si| {
            let seg = &segments[si as usize];
            if seg.region != region || seg.free() + 1e-9 < w {
                return None;
            }
            let dy = (row_ys[si as usize] - desired.y).abs();
            // Approximate x displacement: distance from desired to the
            // feasible span of the segment.
            let lo = seg.interval.lo;
            let hi = seg.interval.hi - w;
            let dx = if desired.x < lo {
                lo - desired.x
            } else if desired.x > hi {
                desired.x - hi
            } else {
                0.0
            };
            Some(dx + 2.0 * dy)
        });
        match best {
            Some((si, _)) => {
                segments[si as usize].used += w;
                segments[si as usize].cells.push(id);
            }
            None => failed += 1,
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::super::segments::build_segments;
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind, Placement};
    use rdp_geom::{Point, Rect};

    fn design(n: usize) -> rdp_db::Design {
        let mut b = DesignBuilder::new("tt");
        b.die(Rect::new(0.0, 0.0, 100.0, 30.0));
        for r in 0..3 {
            b.add_row(f64::from(r) * 10.0, 10.0, 1.0, 0.0, 100);
        }
        let mut prev = None;
        for i in 0..n {
            let id = b.add_node(format!("c{i}"), 4.0, 10.0, NodeKind::Movable).unwrap();
            if let Some(p) = prev {
                let net = b.add_net(format!("n{i}"), 1.0);
                b.add_pin(net, p, Point::ORIGIN);
                b.add_pin(net, id, Point::ORIGIN);
            }
            prev = Some(id);
        }
        b.finish().unwrap()
    }

    #[test]
    fn assigns_all_cells_with_capacity() {
        let d = design(30);
        let pl = Placement::new_centered(&d);
        let mut segs = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut segs);
        assert_eq!(failed, 0);
        let total: usize = segs.iter().map(|s| s.cells.len()).sum();
        assert_eq!(total, 30);
        // Capacity respected.
        for s in &segs {
            assert!(s.used <= s.interval.length() + 1e-9);
        }
    }

    #[test]
    fn prefers_nearby_rows() {
        let d = design(2);
        let mut pl = Placement::new_centered(&d);
        let c0 = d.find_node("c0").unwrap();
        pl.set_lower_left(&d, c0, Point::new(50.0, 20.0)); // row 2
        let mut segs = build_segments(&d, &[]);
        assign_cells(&d, &pl, &mut segs);
        let assigned_row = segs.iter().find(|s| s.cells.contains(&c0)).unwrap().row;
        assert_eq!(assigned_row, 2);
    }

    #[test]
    fn overfull_design_reports_failures() {
        // 100-wide rows × 3 = 75 cells of (ceil) width 4; ask for 80.
        let d = design(80);
        let pl = Placement::new_centered(&d);
        let mut segs = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut segs);
        assert!(failed >= 5, "expected ≥5 failures, got {failed}");
    }

    #[test]
    fn site_width_quantizes_up() {
        let d = design(1);
        let c0 = d.find_node("c0").unwrap();
        assert_eq!(site_width(&d, c0, 1.0), 4.0);
        assert_eq!(site_width(&d, c0, 3.0), 6.0);
    }

    /// The windowed index query must pick the same segment, in the same
    /// order of strict improvements, as a full linear scan over segments.
    #[test]
    fn windowed_query_matches_full_scan() {
        let d = design(40);
        let mut pl = Placement::new_centered(&d);
        // Scatter desired positions deterministically so rows compete.
        let mut rng = rdp_geom::rng::Rng::seed_from_u64(77);
        for id in d.node_ids() {
            let x = rng.gen_range(0.0..96.0);
            let y = rng.gen_range(0.0..30.0);
            pl.set_lower_left(&d, id, Point::new(x, y));
        }
        let mut fast = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut fast);

        // Reference: a linear scan over all segments per cell, keeping the
        // first strict improvement.
        let mut slow = build_segments(&d, &[]);
        let site = 1.0;
        let mut cells: Vec<NodeId> =
            d.node_ids().filter(|&id| d.node(id).is_std_cell()).collect();
        cells.sort_by(|&a, &b| pl.center(a).x.total_cmp(&pl.center(b).x).then(a.cmp(&b)));
        let mut slow_failed = 0;
        for id in cells {
            let w = site_width(&d, id, site);
            let desired = pl.lower_left(&d, id);
            let region = d.node(id).region();
            let mut best: Option<(f64, usize)> = None;
            for (si, seg) in slow.iter().enumerate() {
                if seg.region != region || seg.free() + 1e-9 < w {
                    continue;
                }
                let row_y = d.rows()[seg.row].y();
                let dy = (row_y - desired.y).abs();
                let lo = seg.interval.lo;
                let hi = seg.interval.hi - w;
                let dx = if desired.x < lo {
                    lo - desired.x
                } else if desired.x > hi {
                    desired.x - hi
                } else {
                    0.0
                };
                let cost = dx + 2.0 * dy;
                if best.map(|(c, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, si));
                }
            }
            match best {
                Some((_, si)) => {
                    slow[si].used += w;
                    slow[si].cells.push(id);
                }
                None => slow_failed += 1,
            }
        }

        assert_eq!(failed, slow_failed);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.cells, s.cells, "row {} span {:?}", f.row, f.interval);
            assert_eq!(f.used.to_bits(), s.used.to_bits());
        }
    }
}
