//! Tetris-style greedy segment assignment for standard cells: the global
//! serial sweep ([`assign_cells`]) and its band-parallel counterpart
//! ([`assign_cells_par`]) which partitions rows into fixed horizontal
//! bands, runs an independent sweep per band on the worker pool, and
//! recovers cross-band strays with a deterministic serial pass.

use super::segments::Segment;
use rdp_db::{Design, NodeId, Placement, RegionId};
use rdp_geom::grid_index::BucketGrid;
use rdp_geom::parallel::{chunked_map, Parallelism};
use rdp_geom::{Point, Rect};

/// Placement rows per legalization band. Fixed — never derived from the
/// thread count — so the band partition (and therefore the result) depends
/// only on the input design, exactly like the kernel chunk constants.
/// Designs with at most this many rows degenerate to a single band, which
/// runs the *identical* global sweep.
const BAND_ROWS: usize = 32;

/// Site-quantized width a cell occupies in a row.
fn site_width(design: &Design, id: NodeId, site: f64) -> f64 {
    (design.node(id).width() / site).ceil() * site
}

/// Feasibility + displacement cost of putting a `w`-wide cell of `region`
/// into `seg` (whose row sits at `row_y`): `dx + 2·dy` against the
/// feasible span, `None` when the region mismatches or capacity is
/// exhausted. Shared by the serial sweep, the band workers and the stray
/// recovery so all three price segments identically.
fn seg_cost(
    seg: &Segment,
    row_y: f64,
    desired: Point,
    region: Option<RegionId>,
    w: f64,
) -> Option<f64> {
    if seg.region != region || seg.free() + 1e-9 < w {
        return None;
    }
    let dy = (row_y - desired.y).abs();
    // Approximate x displacement: distance from desired to the feasible
    // span of the segment.
    let lo = seg.interval.lo;
    let hi = seg.interval.hi - w;
    let dx = if desired.x < lo {
        lo - desired.x
    } else if desired.x > hi {
        desired.x - hi
    } else {
        0.0
    };
    Some(dx + 2.0 * dy)
}

/// The classic Tetris cell order: ascending desired x, node id tie-break.
fn x_sorted_cells(design: &Design, placement: &Placement) -> Vec<NodeId> {
    let mut cells: Vec<NodeId> = design
        .node_ids()
        .filter(|&id| design.node(id).is_std_cell())
        .collect();
    cells.sort_by(|&a, &b| {
        placement
            .center(a)
            .x
            .total_cmp(&placement.center(b).x)
            .then(a.cmp(&b))
    });
    cells
}

/// Assigns every standard cell to a segment of matching fence region,
/// minimizing `|Δy| + |Δx|` displacement subject to remaining capacity.
/// Returns the number of cells that found no segment (capacity exhausted
/// everywhere — 0 on any sanely-sized design).
///
/// Candidate segments come from a bucketed spatial index queried around
/// each cell's desired position, so the per-cell work is a local window
/// rather than a scan of every segment. The query cost `dx + 2·dy` never
/// undercuts the L1 distance to a segment's span, so the windowed search
/// returns the same `(cost, index)`-minimal segment as a full scan —
/// including the lowest-segment-index tie-break.
pub fn assign_cells(design: &Design, placement: &Placement, segments: &mut [Segment]) -> usize {
    let site = design
        .rows()
        .first()
        .map(|r| r.site_width())
        .unwrap_or(1.0);

    // Cells ordered by desired x (the classic Tetris sweep) so left space
    // fills left-to-right and displacement stays local.
    let cells = x_sorted_cells(design, placement);

    // Each segment is a zero-height rect at its row's y; feasibility
    // (region match, remaining capacity) lives in the query cost so the
    // index never needs rebuilding as segments fill up.
    let row_ys: Vec<f64> = segments
        .iter()
        .map(|s| design.rows()[s.row].y())
        .collect();
    let res = ((segments.len() as f64).sqrt().ceil() as usize).clamp(4, 256);
    let mut index = BucketGrid::new(design.die(), res, res);
    for (seg, &row_y) in segments.iter().zip(&row_ys) {
        index.insert(Rect::new(seg.interval.lo, row_y, seg.interval.hi, row_y));
    }

    let mut failed = 0;
    for id in cells {
        let w = site_width(design, id, site);
        let desired = placement.lower_left(design, id);
        let region = design.node(id).region();
        let best = index.nearest_by(desired, |si| {
            seg_cost(&segments[si as usize], row_ys[si as usize], desired, region, w)
        });
        match best {
            Some((si, _)) => {
                segments[si as usize].used += w;
                segments[si as usize].cells.push(id);
            }
            None => failed += 1,
        }
    }
    failed
}

/// Assignments produced by one band's independent sweep, plus the cells it
/// could not fit locally (recovered by a serial cross-band pass).
struct BandOutcome {
    /// `(segment index, cell, site-quantized width)` in assignment order.
    assigned: Vec<(usize, NodeId, f64)>,
    /// `(cell, width)` of cells with no feasible segment in the band.
    strays: Vec<(NodeId, f64)>,
}

/// Band-parallel Tetris assignment: rows are partitioned into fixed
/// [`BAND_ROWS`]-row horizontal bands; each cell is binned to the band of
/// its nearest row (by desired y, lower row index on ties) and each band
/// runs an independent greedy sweep over only its own segments. Band
/// results are merged in ascending band order, then cells that found no
/// capacity inside their band are recovered by a serial scan over all
/// segments in a canonical (desired x, id) order.
///
/// The result depends only on the input — the band boundaries are a pure
/// function of the row count, every band worker is a pure function of the
/// pre-merge state, and both merge and recovery run in a fixed order — so
/// any thread count (including 1) produces bitwise-identical segments.
/// Designs spanning a single band take the [`assign_cells`] path verbatim.
pub fn assign_cells_par(
    design: &Design,
    placement: &Placement,
    segments: &mut [Segment],
    par: &Parallelism,
) -> usize {
    let num_rows = design.rows().len();
    let num_bands = num_rows.div_ceil(BAND_ROWS);
    if num_bands <= 1 {
        return assign_cells(design, placement, segments);
    }
    let site = design
        .rows()
        .first()
        .map(|r| r.site_width())
        .unwrap_or(1.0);

    // Bin each x-sorted cell to the band of its nearest row. Rows are
    // sorted by y once; ties in |Δy| break toward the lower row index so
    // binning is total-order deterministic.
    let mut row_order: Vec<usize> = (0..num_rows).collect();
    row_order.sort_by(|&a, &b| {
        design.rows()[a]
            .y()
            .total_cmp(&design.rows()[b].y())
            .then(a.cmp(&b))
    });
    let sorted_ys: Vec<f64> = row_order.iter().map(|&r| design.rows()[r].y()).collect();
    let band_of_y = |y: f64| -> usize {
        let i = sorted_ys.partition_point(|&v| v < y);
        let k = if i == 0 {
            0
        } else if i >= sorted_ys.len() {
            sorted_ys.len() - 1
        } else if y - sorted_ys[i - 1] <= sorted_ys[i] - y {
            i - 1
        } else {
            i
        };
        row_order[k] / BAND_ROWS
    };
    let mut band_cells: Vec<Vec<NodeId>> = vec![Vec::new(); num_bands];
    for id in x_sorted_cells(design, placement) {
        band_cells[band_of_y(placement.lower_left(design, id).y)].push(id);
    }

    // Segments grouped by band; `build_segments` emits rows in order, so
    // each band's segment indices are ascending — the lowest-index
    // tie-break inside a band coincides with the global one.
    let row_ys: Vec<f64> = segments
        .iter()
        .map(|s| design.rows()[s.row].y())
        .collect();
    let mut band_segs: Vec<Vec<usize>> = vec![Vec::new(); num_bands];
    for (si, seg) in segments.iter().enumerate() {
        band_segs[seg.row / BAND_ROWS].push(si);
    }

    // Per-band sweeps: pure functions of the frozen segment state, with
    // band-local capacity tracking, merged below in band order.
    let segs_ro: &[Segment] = segments;
    let outcomes: Vec<BandOutcome> = chunked_map(par, num_bands, |b| {
        let locals = &band_segs[b];
        let res = ((locals.len() as f64).sqrt().ceil() as usize).clamp(4, 256);
        let mut index = BucketGrid::new(design.die(), res, res);
        for &si in locals {
            index.insert(Rect::new(
                segs_ro[si].interval.lo,
                row_ys[si],
                segs_ro[si].interval.hi,
                row_ys[si],
            ));
        }
        let mut extra_used = vec![0.0f64; locals.len()];
        let mut out = BandOutcome {
            assigned: Vec::new(),
            strays: Vec::new(),
        };
        for &id in &band_cells[b] {
            let w = site_width(design, id, site);
            let desired = placement.lower_left(design, id);
            let region = design.node(id).region();
            let best = index.nearest_by(desired, |k| {
                let seg = &segs_ro[locals[k as usize]];
                if seg.region != region
                    || seg.free() - extra_used[k as usize] + 1e-9 < w
                {
                    return None;
                }
                seg_cost(seg, row_ys[locals[k as usize]], desired, region, w)
            });
            match best {
                Some((k, _)) => {
                    extra_used[k as usize] += w;
                    out.assigned.push((locals[k as usize], id, w));
                }
                None => out.strays.push((id, w)),
            }
        }
        out
    });

    // Deterministic merge: band order, then each band's assignment order.
    let mut strays: Vec<(NodeId, f64)> = Vec::new();
    for out in outcomes {
        for (si, id, w) in out.assigned {
            segments[si].used += w;
            segments[si].cells.push(id);
        }
        strays.extend(out.strays);
    }

    // Cross-band recovery in canonical (desired x, id) order: full linear
    // scan over every segment, keeping the first strict improvement — the
    // same price and tie-break as the in-band search.
    strays.sort_by(|a, b| {
        placement
            .center(a.0)
            .x
            .total_cmp(&placement.center(b.0).x)
            .then(a.0.cmp(&b.0))
    });
    let mut failed = 0;
    for (id, w) in strays {
        let desired = placement.lower_left(design, id);
        let region = design.node(id).region();
        let mut best: Option<(f64, usize)> = None;
        for (si, seg) in segments.iter().enumerate() {
            if let Some(cost) = seg_cost(seg, row_ys[si], desired, region, w) {
                if best.map(|(c, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, si));
                }
            }
        }
        match best {
            Some((_, si)) => {
                segments[si].used += w;
                segments[si].cells.push(id);
            }
            None => failed += 1,
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::super::segments::build_segments;
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind, Placement};
    use rdp_geom::{Point, Rect};

    fn design(n: usize) -> rdp_db::Design {
        let mut b = DesignBuilder::new("tt");
        b.die(Rect::new(0.0, 0.0, 100.0, 30.0));
        for r in 0..3 {
            b.add_row(f64::from(r) * 10.0, 10.0, 1.0, 0.0, 100);
        }
        let mut prev = None;
        for i in 0..n {
            let id = b.add_node(format!("c{i}"), 4.0, 10.0, NodeKind::Movable).unwrap();
            if let Some(p) = prev {
                let net = b.add_net(format!("n{i}"), 1.0);
                b.add_pin(net, p, Point::ORIGIN);
                b.add_pin(net, id, Point::ORIGIN);
            }
            prev = Some(id);
        }
        b.finish().unwrap()
    }

    #[test]
    fn assigns_all_cells_with_capacity() {
        let d = design(30);
        let pl = Placement::new_centered(&d);
        let mut segs = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut segs);
        assert_eq!(failed, 0);
        let total: usize = segs.iter().map(|s| s.cells.len()).sum();
        assert_eq!(total, 30);
        // Capacity respected.
        for s in &segs {
            assert!(s.used <= s.interval.length() + 1e-9);
        }
    }

    #[test]
    fn prefers_nearby_rows() {
        let d = design(2);
        let mut pl = Placement::new_centered(&d);
        let c0 = d.find_node("c0").unwrap();
        pl.set_lower_left(&d, c0, Point::new(50.0, 20.0)); // row 2
        let mut segs = build_segments(&d, &[]);
        assign_cells(&d, &pl, &mut segs);
        let assigned_row = segs.iter().find(|s| s.cells.contains(&c0)).unwrap().row;
        assert_eq!(assigned_row, 2);
    }

    #[test]
    fn overfull_design_reports_failures() {
        // 100-wide rows × 3 = 75 cells of (ceil) width 4; ask for 80.
        let d = design(80);
        let pl = Placement::new_centered(&d);
        let mut segs = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut segs);
        assert!(failed >= 5, "expected ≥5 failures, got {failed}");
    }

    #[test]
    fn site_width_quantizes_up() {
        let d = design(1);
        let c0 = d.find_node("c0").unwrap();
        assert_eq!(site_width(&d, c0, 1.0), 4.0);
        assert_eq!(site_width(&d, c0, 3.0), 6.0);
    }

    /// A design wide/tall enough to span several bands.
    fn tall_design(n: usize, rows: usize) -> rdp_db::Design {
        let mut b = DesignBuilder::new("tall");
        b.die(Rect::new(0.0, 0.0, 200.0, rows as f64 * 10.0));
        for r in 0..rows {
            b.add_row(r as f64 * 10.0, 10.0, 1.0, 0.0, 200);
        }
        for i in 0..n {
            b.add_node(format!("c{i}"), 4.0, 10.0, NodeKind::Movable).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn banded_assignment_is_thread_invariant() {
        let d = tall_design(600, 80); // 80 rows -> 3 bands
        let mut pl = Placement::new_centered(&d);
        let mut rng = rdp_geom::rng::Rng::seed_from_u64(99);
        for id in d.node_ids() {
            let x = rng.gen_range(0.0..196.0);
            let y = rng.gen_range(0.0..800.0);
            pl.set_lower_left(&d, id, Point::new(x, y));
        }
        let run = |threads: usize| {
            let mut par = rdp_geom::parallel::Parallelism::new(threads);
            par.ensure_pool();
            let mut segs = build_segments(&d, &[]);
            let failed = assign_cells_par(&d, &pl, &mut segs, &par);
            (failed, segs)
        };
        let (f1, s1) = run(1);
        assert_eq!(f1, 0);
        let total: usize = s1.iter().map(|s| s.cells.len()).sum();
        assert_eq!(total, 600);
        for (f, segs) in [run(2), run(8)] {
            assert_eq!(f, f1);
            for (a, b) in s1.iter().zip(&segs) {
                assert_eq!(a.cells, b.cells, "row {}", a.row);
                assert_eq!(a.used.to_bits(), b.used.to_bits());
            }
        }
    }

    #[test]
    fn single_band_falls_back_to_global_sweep() {
        let d = tall_design(60, 20); // 20 rows -> one band
        let mut pl = Placement::new_centered(&d);
        let mut rng = rdp_geom::rng::Rng::seed_from_u64(7);
        for id in d.node_ids() {
            let x = rng.gen_range(0.0..196.0);
            let y = rng.gen_range(0.0..200.0);
            pl.set_lower_left(&d, id, Point::new(x, y));
        }
        let mut par = rdp_geom::parallel::Parallelism::new(8);
        par.ensure_pool();
        let mut banded = build_segments(&d, &[]);
        let fb = assign_cells_par(&d, &pl, &mut banded, &par);
        let mut global = build_segments(&d, &[]);
        let fg = assign_cells(&d, &pl, &mut global);
        assert_eq!(fb, fg);
        for (a, b) in banded.iter().zip(&global) {
            assert_eq!(a.cells, b.cells);
            assert_eq!(a.used.to_bits(), b.used.to_bits());
        }
    }

    /// The windowed index query must pick the same segment, in the same
    /// order of strict improvements, as a full linear scan over segments.
    #[test]
    fn windowed_query_matches_full_scan() {
        let d = design(40);
        let mut pl = Placement::new_centered(&d);
        // Scatter desired positions deterministically so rows compete.
        let mut rng = rdp_geom::rng::Rng::seed_from_u64(77);
        for id in d.node_ids() {
            let x = rng.gen_range(0.0..96.0);
            let y = rng.gen_range(0.0..30.0);
            pl.set_lower_left(&d, id, Point::new(x, y));
        }
        let mut fast = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut fast);

        // Reference: a linear scan over all segments per cell, keeping the
        // first strict improvement.
        let mut slow = build_segments(&d, &[]);
        let site = 1.0;
        let mut cells: Vec<NodeId> =
            d.node_ids().filter(|&id| d.node(id).is_std_cell()).collect();
        cells.sort_by(|&a, &b| pl.center(a).x.total_cmp(&pl.center(b).x).then(a.cmp(&b)));
        let mut slow_failed = 0;
        for id in cells {
            let w = site_width(&d, id, site);
            let desired = pl.lower_left(&d, id);
            let region = d.node(id).region();
            let mut best: Option<(f64, usize)> = None;
            for (si, seg) in slow.iter().enumerate() {
                if seg.region != region || seg.free() + 1e-9 < w {
                    continue;
                }
                let row_y = d.rows()[seg.row].y();
                let dy = (row_y - desired.y).abs();
                let lo = seg.interval.lo;
                let hi = seg.interval.hi - w;
                let dx = if desired.x < lo {
                    lo - desired.x
                } else if desired.x > hi {
                    desired.x - hi
                } else {
                    0.0
                };
                let cost = dx + 2.0 * dy;
                if best.map(|(c, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, si));
                }
            }
            match best {
                Some((_, si)) => {
                    slow[si].used += w;
                    slow[si].cells.push(id);
                }
                None => slow_failed += 1,
            }
        }

        assert_eq!(failed, slow_failed);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.cells, s.cells, "row {} span {:?}", f.row, f.interval);
            assert_eq!(f.used.to_bits(), s.used.to_bits());
        }
    }
}
