//! Tetris-style greedy segment assignment for standard cells.

use super::segments::Segment;
use rdp_db::{Design, NodeId, Placement};

/// Site-quantized width a cell occupies in a row.
fn site_width(design: &Design, id: NodeId, site: f64) -> f64 {
    (design.node(id).width() / site).ceil() * site
}

/// Assigns every standard cell to a segment of matching fence region,
/// minimizing `|Δy| + |Δx|` displacement subject to remaining capacity.
/// Returns the number of cells that found no segment (capacity exhausted
/// everywhere — 0 on any sanely-sized design).
pub fn assign_cells(design: &Design, placement: &Placement, segments: &mut [Segment]) -> usize {
    let site = design
        .rows()
        .first()
        .map(|r| r.site_width())
        .unwrap_or(1.0);

    // Cells ordered by desired x (the classic Tetris sweep) so left space
    // fills left-to-right and displacement stays local.
    let mut cells: Vec<NodeId> = design
        .node_ids()
        .filter(|&id| design.node(id).is_std_cell())
        .collect();
    cells.sort_by(|&a, &b| {
        placement
            .center(a)
            .x
            .partial_cmp(&placement.center(b).x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut failed = 0;
    for id in cells {
        let w = site_width(design, id, site);
        let desired = placement.lower_left(design, id);
        let region = design.node(id).region();
        let mut best: Option<(f64, usize)> = None;
        for (si, seg) in segments.iter().enumerate() {
            if seg.region != region || seg.free() + 1e-9 < w {
                continue;
            }
            let row_y = design.rows()[seg.row].y();
            let dy = (row_y - desired.y).abs();
            // Approximate x displacement: distance from desired to the
            // feasible span of the segment.
            let lo = seg.interval.lo;
            let hi = seg.interval.hi - w;
            let dx = if desired.x < lo {
                lo - desired.x
            } else if desired.x > hi {
                desired.x - hi
            } else {
                0.0
            };
            let cost = dx + 2.0 * dy;
            if best.map(|(c, _)| cost < c).unwrap_or(true) {
                best = Some((cost, si));
            }
        }
        match best {
            Some((_, si)) => {
                segments[si].used += w;
                segments[si].cells.push(id);
            }
            None => failed += 1,
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::super::segments::build_segments;
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind, Placement};
    use rdp_geom::{Point, Rect};

    fn design(n: usize) -> rdp_db::Design {
        let mut b = DesignBuilder::new("tt");
        b.die(Rect::new(0.0, 0.0, 100.0, 30.0));
        for r in 0..3 {
            b.add_row(f64::from(r) * 10.0, 10.0, 1.0, 0.0, 100);
        }
        let mut prev = None;
        for i in 0..n {
            let id = b.add_node(format!("c{i}"), 4.0, 10.0, NodeKind::Movable).unwrap();
            if let Some(p) = prev {
                let net = b.add_net(format!("n{i}"), 1.0);
                b.add_pin(net, p, Point::ORIGIN);
                b.add_pin(net, id, Point::ORIGIN);
            }
            prev = Some(id);
        }
        b.finish().unwrap()
    }

    #[test]
    fn assigns_all_cells_with_capacity() {
        let d = design(30);
        let pl = Placement::new_centered(&d);
        let mut segs = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut segs);
        assert_eq!(failed, 0);
        let total: usize = segs.iter().map(|s| s.cells.len()).sum();
        assert_eq!(total, 30);
        // Capacity respected.
        for s in &segs {
            assert!(s.used <= s.interval.length() + 1e-9);
        }
    }

    #[test]
    fn prefers_nearby_rows() {
        let d = design(2);
        let mut pl = Placement::new_centered(&d);
        let c0 = d.find_node("c0").unwrap();
        pl.set_lower_left(&d, c0, Point::new(50.0, 20.0)); // row 2
        let mut segs = build_segments(&d, &[]);
        assign_cells(&d, &pl, &mut segs);
        let assigned_row = segs.iter().find(|s| s.cells.contains(&c0)).unwrap().row;
        assert_eq!(assigned_row, 2);
    }

    #[test]
    fn overfull_design_reports_failures() {
        // 100-wide rows × 3 = 75 cells of (ceil) width 4; ask for 80.
        let d = design(80);
        let pl = Placement::new_centered(&d);
        let mut segs = build_segments(&d, &[]);
        let failed = assign_cells(&d, &pl, &mut segs);
        assert!(failed >= 5, "expected ≥5 failures, got {failed}");
    }

    #[test]
    fn site_width_quantizes_up() {
        let d = design(1);
        let c0 = d.find_node("c0").unwrap();
        assert_eq!(site_width(&d, c0, 1.0), 4.0);
        assert_eq!(site_width(&d, c0, 3.0), 6.0);
    }
}
