//! Fence-aware legalization: macros first, then standard cells.
//!
//! The flow matches the paper's: movable macros are snapped to legal,
//! non-overlapping spots (largest first) and become obstacles; the row
//! area left over is carved into *segments* (row pieces between
//! obstacles, tagged with the fence region covering them); each standard
//! cell is assigned to a nearby segment of matching region (Tetris-style
//! greedy assignment); finally each segment is packed optimally with the
//! Abacus dynamic clustering algorithm.

mod abacus;
mod macros;
mod segments;
mod tetris;

pub use abacus::{pack_positions, pack_segment};
pub use macros::legalize_macros;
pub use segments::{build_segments, Segment};
pub use tetris::{assign_cells, assign_cells_par};

use rdp_db::{Design, NodeKind, Placement};
use rdp_geom::parallel::{chunked_map, Parallelism};
use rdp_geom::Orient;

/// Aggregate legalization statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LegalizeStats {
    /// Sum of cell displacement (Manhattan) incurred by legalization.
    pub total_displacement: f64,
    /// Largest single displacement.
    pub max_displacement: f64,
    /// Displacement summed over fence-constrained cells only — the cost of
    /// enforcing fences at legalization time (large when global placement
    /// ignored them).
    pub fenced_displacement: f64,
    /// Number of fence-constrained movable cells.
    pub fenced_count: usize,
    /// Cells that could not be placed in any segment (0 on success).
    pub failed: usize,
}

/// Legalizes `placement` in place: macros, then standard cells.
///
/// After this call every movable node is on-die, macros are
/// non-overlapping and row/site aligned, and standard cells are
/// row/site-legal within fence-respecting segments.
pub fn legalize(design: &Design, placement: &mut Placement) -> LegalizeStats {
    // Normalize standard-cell orientations to row-legal ones first.
    for id in design.node_ids() {
        if design.node(id).is_std_cell() {
            let o = placement.orient(id);
            if o.swaps_dimensions() || o.quarter_turns() == 2 {
                placement.set_orient(id, if o.is_flipped() { Orient::FN } else { Orient::N });
            }
        }
    }

    let mut obstacles: Vec<rdp_geom::Rect> = design
        .node_ids()
        .filter(|&id| design.node(id).kind() == NodeKind::Fixed)
        .flat_map(|id| design.blocking_rects(id, placement))
        .collect();

    let macro_rects = legalize_macros(design, placement, &obstacles);
    obstacles.extend(macro_rects);

    let mut segments = build_segments(design, &obstacles);
    let stats = LegalizeStats {
        failed: assign_cells(design, placement, &mut segments),
        ..LegalizeStats::default()
    };

    for seg in &mut segments {
        pack_segment(design, placement, seg);
    }

    // Displacement accounting (macros + cells, against pre-call positions
    // is not available here, so callers wanting exact displacement snapshot
    // positions beforehand; we measure nothing in that case).
    stats
}

/// Band-parallel legalization: same flow as [`legalize`], but the
/// standard-cell stages run on the worker pool — Tetris assignment over
/// independent horizontal row bands ([`assign_cells_par`]) and Abacus
/// packing over segments (each segment reads and writes only its own
/// disjoint cell set, so [`pack_positions`] runs concurrently and the
/// results are applied in segment order).
///
/// The result depends only on the input design and placement, never on
/// the thread count. Macro legalization and orientation normalization
/// stay serial — they are a vanishing fraction of legalization time.
pub fn legalize_par(
    design: &Design,
    placement: &mut Placement,
    par: &Parallelism,
) -> LegalizeStats {
    for id in design.node_ids() {
        if design.node(id).is_std_cell() {
            let o = placement.orient(id);
            if o.swaps_dimensions() || o.quarter_turns() == 2 {
                placement.set_orient(id, if o.is_flipped() { Orient::FN } else { Orient::N });
            }
        }
    }

    let mut obstacles: Vec<rdp_geom::Rect> = design
        .node_ids()
        .filter(|&id| design.node(id).kind() == NodeKind::Fixed)
        .flat_map(|id| design.blocking_rects(id, placement))
        .collect();

    let macro_rects = legalize_macros(design, placement, &obstacles);
    obstacles.extend(macro_rects);

    let mut segments = build_segments(design, &obstacles);
    let stats = LegalizeStats {
        failed: assign_cells_par(design, placement, &mut segments, par),
        ..LegalizeStats::default()
    };

    // Pack every segment concurrently against the frozen placement, then
    // apply in segment order. Segments hold disjoint cell sets and each
    // pack reads only its own cells, so this matches the serial
    // pack-then-write loop bitwise.
    let placement_ro: &Placement = placement;
    let seg_ro: &[Segment] = &segments;
    let packed = chunked_map(par, segments.len(), |i| {
        pack_positions(design, placement_ro, &seg_ro[i])
    });
    for seg in packed {
        for (id, p) in seg {
            placement.set_lower_left(design, id, p);
        }
    }
    stats
}

/// Convenience: legalize and report displacement against a snapshot taken
/// before legalization.
pub fn legalize_with_displacement(design: &Design, placement: &mut Placement) -> LegalizeStats {
    let before = placement.clone();
    let stats = legalize(design, placement);
    displacement_stats(design, placement, &before, stats)
}

/// [`legalize_par`] plus displacement reporting, mirroring
/// [`legalize_with_displacement`].
pub fn legalize_with_displacement_par(
    design: &Design,
    placement: &mut Placement,
    par: &Parallelism,
) -> LegalizeStats {
    let before = placement.clone();
    let stats = legalize_par(design, placement, par);
    displacement_stats(design, placement, &before, stats)
}

fn displacement_stats(
    design: &Design,
    placement: &Placement,
    before: &Placement,
    mut stats: LegalizeStats,
) -> LegalizeStats {
    for id in design.movable_ids() {
        let d = before.center(id).manhattan(placement.center(id));
        stats.total_displacement += d;
        stats.max_displacement = stats.max_displacement.max(d);
        if design.node(id).region().is_some() {
            stats.fenced_displacement += d;
            stats.fenced_count += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::validate::check_legal;
    use rdp_gen::{generate, GeneratorConfig};
    use rdp_geom::Point;

    /// Spread movers pseudo-randomly (deterministic) so legalization has
    /// realistic input instead of the all-at-center pile.
    fn scatter(design: &Design, placement: &mut Placement, seed: u64) {
        let mut rng = rdp_geom::rng::Rng::seed_from_u64(seed);
        let die = design.die();
        for id in design.movable_ids() {
            let (w, h) = placement.dims(design, id);
            let x = rng.gen_range(die.xl + w / 2.0..die.xh - w / 2.0);
            let y = rng.gen_range(die.yl + h / 2.0..die.yh - h / 2.0);
            placement.set_center(id, Point::new(x, y));
        }
    }

    #[test]
    fn legalizes_a_scattered_tiny_design() {
        let bench = generate(&GeneratorConfig::tiny("lg1", 21)).unwrap();
        let mut pl = bench.placement.clone();
        scatter(&bench.design, &mut pl, 1);
        let stats = legalize_with_displacement(&bench.design, &mut pl);
        assert_eq!(stats.failed, 0, "all cells must find a segment");
        let report = check_legal(&bench.design, &pl, 50);
        assert!(
            report.is_legal(),
            "violations remain: {:?} (overlap {})",
            &report.violations[..report.violations.len().min(5)],
            report.total_overlap_area
        );
        assert!(stats.total_displacement > 0.0);
    }

    #[test]
    fn legalizes_hierarchical_design_without_fence_violations() {
        let bench = generate(&GeneratorConfig::hierarchical("lg2", 22, 2)).unwrap();
        let mut pl = bench.placement.clone();
        scatter(&bench.design, &mut pl, 2);
        let stats = legalize_with_displacement(&bench.design, &mut pl);
        assert_eq!(stats.failed, 0);
        let report = check_legal(&bench.design, &pl, 50);
        assert_eq!(
            report.fence_violations, 0,
            "fence violations: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
        assert!(report.is_legal(), "violations: {:?}", &report.violations[..report.violations.len().min(5)]);
    }

    #[test]
    fn legalization_is_idempotent_in_cost() {
        let bench = generate(&GeneratorConfig::tiny("lg3", 23)).unwrap();
        let mut pl = bench.placement.clone();
        scatter(&bench.design, &mut pl, 3);
        legalize(&bench.design, &mut pl);
        let h1 = rdp_db::hpwl::total_hpwl(&bench.design, &pl);
        // Re-legalizing an already legal placement should barely move cells.
        let stats = legalize_with_displacement(&bench.design, &mut pl);
        let h2 = rdp_db::hpwl::total_hpwl(&bench.design, &pl);
        assert!(stats.failed == 0);
        assert!(
            (h1 - h2).abs() / h1 < 0.05,
            "second legalization changed HPWL {h1} -> {h2}"
        );
    }
}
