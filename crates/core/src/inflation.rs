//! Congestion-driven cell inflation — the routability mechanism of the
//! paper's ICCAD-2011 predecessor that NTUplace4h inherits.
//!
//! After global placement converges, a congestion map is estimated; cells
//! sitting in over-congested gcells get their *density* area inflated, and
//! global placement re-runs with the inflated areas. The density penalty
//! then pushes cells out of hot spots, trading a little wirelength for
//! routability. Physical sizes never change — only the density view.

use crate::model::Model;
use rdp_route::RouteGrid;

/// Inflation tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflationConfig {
    /// Congestion-ratio exponent: factor = ratio^alpha.
    pub alpha: f64,
    /// Cap on the cumulative inflation of a single cell
    /// (area ≤ cap × physical area).
    pub max_total: f64,
    /// Congestion ratio above which a cell inflates.
    pub threshold: f64,
    /// Whether fence-constrained cells inflate too. Off by default: a
    /// fence's capacity is fixed, so inflating its members cannot spread
    /// them anywhere — it only fights the pull-in force and destabilizes
    /// convergence.
    pub inflate_fenced: bool,
}

impl Default for InflationConfig {
    fn default() -> Self {
        InflationConfig {
            alpha: 1.0,
            max_total: 2.5,
            threshold: 1.0,
            inflate_fenced: false,
        }
    }
}

/// Outcome of one inflation pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InflationStats {
    /// Which estimator tier supplied this round's congestion picture
    /// (placer-filled; [`inflate`] itself leaves the default).
    pub source: crate::placer::CongestionSource,
    /// Cells whose area grew this pass.
    pub inflated: usize,
    /// Total density area after / before the pass.
    pub growth: f64,
    /// Nets the congestion refresh feeding this pass (re)routed: all nets
    /// on a full-route round, the dirty-net count on an incremental one,
    /// `0` when the pattern estimator supplied the congestion (filled by
    /// the placer's routability loop, not by [`inflate`]).
    pub dirty_nets: usize,
    /// Wall-clock of that congestion refresh (also placer-filled).
    pub congestion_time: std::time::Duration,
    /// Cells skipped because their gcell congestion ratio (or the derived
    /// inflation factor) was non-finite — a corrupted-grid symptom.
    pub skipped_nonfinite: usize,
    /// Divergence recoveries the round's GP rerun performed
    /// (placer-filled).
    pub recoveries: usize,
    /// Whether the round's GP rerun failed and the placement was restored
    /// from the previous checkpoint (placer-filled).
    pub restored: bool,
    /// Whether this round's congestion came from (or switched the loop to)
    /// the probabilistic estimator after a router budget truncation or
    /// grid corruption (placer-filled).
    pub congestion_fallback: bool,
}

/// Inflates the density areas of objects sitting in congested gcells of
/// `grid`. Compounds across passes, capped at `config.max_total` times the
/// physical area. Macros are exempt (they are congestion *causes* handled
/// by blockage carving, not congestion *movers*).
pub fn inflate(model: &mut Model, grid: &RouteGrid, config: InflationConfig) -> InflationStats {
    let before: f64 = model.area.iter().sum();
    let mut inflated = 0;
    let mut skipped_nonfinite = 0;
    for i in 0..model.len() {
        if model.is_macro[i] || (!config.inflate_fenced && model.region[i].is_some()) {
            continue;
        }
        let g = grid.gcell_of(model.pos(i));
        let ratio = grid.gcell_congestion(g);
        // A non-finite ratio (corrupted grid) must be skipped explicitly:
        // `NaN <= threshold` is false, so it would otherwise fall through
        // and poison the density area via `powf`/`min` below.
        if !ratio.is_finite() {
            skipped_nonfinite += 1;
            continue;
        }
        if ratio <= config.threshold {
            continue;
        }
        let factor = ratio.powf(config.alpha);
        if !factor.is_finite() {
            skipped_nonfinite += 1;
            continue;
        }
        let phys = model.size[i].0 * model.size[i].1;
        let new_area = (model.area[i] * factor).min(phys * config.max_total);
        if new_area > model.area[i] + 1e-12 {
            model.area[i] = new_area;
            inflated += 1;
        }
    }
    let after: f64 = model.area.iter().sum();
    InflationStats {
        inflated,
        growth: if before > 0.0 { after / before } else { 1.0 },
        skipped_nonfinite,
        ..InflationStats::default()
    }
}

/// Resets every object's density area to its physical area (used when a
/// fresh routability loop starts).
pub fn deflate(model: &mut Model) {
    for i in 0..model.len() {
        model.area[i] = model.size[i].0 * model.size[i].1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_geom::{Point, Rect};

    fn model_at(points: &[(f64, f64)]) -> Model {
        let n = points.len();
        Model::from_parts(
            points.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            vec![(4.0, 10.0); n],
            vec![40.0; n],
            vec![false; n],
            vec![None; n],
            &[],
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        )
    }

    fn hot_grid() -> RouteGrid {
        // 10x10 grid over 100x100; make gcell (2,2) congested at ratio 2.
        let mut g = RouteGrid::uniform(10, 10, Point::ORIGIN, 10.0, 10.0, 10.0, 10.0);
        g.add_usage(g.h_edge(2, 2), 20.0);
        g
    }

    #[test]
    fn cells_in_hot_gcells_inflate() {
        let mut m = model_at(&[(25.0, 25.0), (85.0, 85.0)]);
        let stats = inflate(&mut m, &hot_grid(), InflationConfig::default());
        assert_eq!(stats.inflated, 1);
        assert!((m.area[0] - 80.0).abs() < 1e-9, "ratio 2 doubles the area");
        assert_eq!(m.area[1], 40.0, "cold cell untouched");
        assert!(stats.growth > 1.0);
    }

    #[test]
    fn inflation_compounds_but_caps() {
        let mut m = model_at(&[(25.0, 25.0)]);
        let cfg = InflationConfig::default();
        inflate(&mut m, &hot_grid(), cfg);
        inflate(&mut m, &hot_grid(), cfg);
        inflate(&mut m, &hot_grid(), cfg);
        // 40 * 2 * 2 = 160 > cap 2.5*40 = 100.
        assert!((m.area[0] - 100.0).abs() < 1e-9, "area {} caps at 100", m.area[0]);
    }

    #[test]
    fn macros_are_exempt() {
        let mut m = model_at(&[(25.0, 25.0)]);
        m.is_macro[0] = true;
        let stats = inflate(&mut m, &hot_grid(), InflationConfig::default());
        assert_eq!(stats.inflated, 0);
        assert_eq!(m.area[0], 40.0);
    }

    #[test]
    fn threshold_gates_inflation() {
        let mut m = model_at(&[(25.0, 25.0)]);
        let cfg = InflationConfig { threshold: 3.0, ..InflationConfig::default() };
        let stats = inflate(&mut m, &hot_grid(), cfg);
        assert_eq!(stats.inflated, 0);
    }

    #[test]
    fn non_finite_congestion_is_skipped_not_poisoned() {
        let mut m = model_at(&[(25.0, 25.0), (85.0, 85.0)]);
        let mut g = hot_grid();
        // Infinite usage near cell 0 → non-finite ratio for its gcell.
        g.add_usage(g.h_edge(2, 2), f64::INFINITY);
        let stats = inflate(&mut m, &g, InflationConfig::default());
        assert_eq!(stats.inflated, 0);
        assert_eq!(stats.skipped_nonfinite, 1);
        assert!(m.area.iter().all(|a| a.is_finite()));
        assert_eq!(m.area[0], 40.0, "poisoned ratio must not touch the area");
    }

    #[test]
    fn deflate_restores_physical_area() {
        let mut m = model_at(&[(25.0, 25.0)]);
        inflate(&mut m, &hot_grid(), InflationConfig::default());
        assert!(m.area[0] > 40.0);
        deflate(&mut m);
        assert_eq!(m.area[0], 40.0);
    }
}
