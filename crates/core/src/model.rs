//! The analytical placement model: the movable-object view of a design
//! that the optimizer, clustering and density machinery operate on.
//!
//! A [`Model`] flattens the [`rdp_db::Design`] into index-based
//! arrays over *objects* (movable cells and macros at the finest level,
//! clusters at coarser levels) plus nets whose pins either ride an object
//! (with a center-relative offset) or are anchored at a fixed point
//! (fixed-node and terminal pins).
//!
//! # Memory layout (the million-cell contract)
//!
//! The hot gradient kernels iterate every pin of every net dozens of times
//! per placement; at 10⁶ objects the layout of these arrays *is* the
//! performance model. The model therefore stores everything in
//! structure-of-arrays (SoA) form:
//!
//! * object centers are two flat `f64` arrays (`pos_x`/`pos_y`) rather
//!   than a `Vec<Point>`, so axis-separable kernels (wirelength is a sum
//!   of independent x- and y-terms) stream one contiguous array at a time;
//! * nets are a CSR (compressed sparse row) arena: `net_pin_start[ni] ..
//!   net_pin_start[ni + 1]` indexes the flat pin arrays `pin_obj`,
//!   `pin_off_x`, `pin_off_y`. No per-net heap allocation, no
//!   pointer-chasing, and a net's pins are adjacent in memory;
//! * a pre-computed transpose (`obj_pin_start`/`obj_pin_ids`) lists, for
//!   every object, its movable pins on non-degenerate (≥ 2-pin) nets in
//!   ascending pin order. The gradient gather walks it so that per-object
//!   accumulation happens in exactly the order the old scatter produced —
//!   which is what keeps results bitwise stable while allowing the gather
//!   itself to run in parallel over disjoint object ranges.
//!
//! See `DESIGN.md` §10 for the full layout contract and the determinism
//! argument.

use rdp_db::{Design, NodeId, Placement, RegionId};
use rdp_geom::{Point, Rect};

/// Sentinel object index marking a fixed-anchor pin: `pin_obj[k] ==
/// FIXED_PIN` means pin `k` sits at the absolute position
/// `(pin_off_x[k], pin_off_y[k])` and receives no gradient.
pub const FIXED_PIN: u32 = u32::MAX;

/// A pin description used when *constructing* model nets: either riding
/// object `obj` at `offset` from its center, or fixed in space at `offset`
/// (absolute) when `obj` is `None`.
///
/// This is a construction-time convenience only — the built [`Model`]
/// stores pins in the flat CSR arrays, not as `ModelPin` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPin {
    /// The object carrying the pin, or `None` for a fixed anchor.
    pub obj: Option<u32>,
    /// Center-relative offset (movable) or absolute position (fixed).
    pub offset: Point,
}

impl ModelPin {
    /// Pin riding a movable object.
    pub fn movable(obj: usize, offset: Point) -> Self {
        ModelPin { obj: Some(obj as u32), offset }
    }

    /// Pin fixed at an absolute position.
    pub fn fixed(position: Point) -> Self {
        ModelPin { obj: None, offset: position }
    }
}

/// A net description used when *constructing* a model (tests, clustering).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelNet {
    /// Net weight (multiplies its wirelength contribution).
    pub weight: f64,
    /// The pins.
    pub pins: Vec<ModelPin>,
}

/// The flattened placement problem the optimizer works on.
///
/// Invariants: `pos_x`, `pos_y`, `size`, `area`, `is_macro` and `region`
/// all have one entry per object; `area[i]` is the *density* area
/// (inflated during routability optimization) while `size[i]` is the
/// physical outline. `net_pin_start` has one entry per net plus a final
/// total-pin-count sentinel; `pin_obj`, `pin_off_x` and `pin_off_y` are
/// indexed by the spans it defines. `obj_pin_start`/`obj_pin_ids` must be
/// the transpose of the movable pins of ≥ 2-pin nets, in ascending pin
/// order per object — call [`Model::rebuild_transpose`] after mutating net
/// structure by hand.
#[derive(Debug, Clone)]
pub struct Model {
    /// Object center x-coordinates — optimization variables.
    pub pos_x: Vec<f64>,
    /// Object center y-coordinates — optimization variables.
    pub pos_y: Vec<f64>,
    /// Physical (width, height) per object.
    pub size: Vec<(f64, f64)>,
    /// Density area per object (≥ physical area; grows under inflation).
    pub area: Vec<f64>,
    /// Macro flag per object (macros get rotation handling and are never
    /// clustered).
    pub is_macro: Vec<bool>,
    /// Fence region per object.
    pub region: Vec<Option<RegionId>>,
    /// Net weight per net (multiplies its wirelength contribution).
    pub net_weight: Vec<f64>,
    /// CSR row starts into the pin arrays; `len() == num_nets() + 1`.
    pub net_pin_start: Vec<u32>,
    /// Carrying object per pin, or [`FIXED_PIN`] for a fixed anchor.
    pub pin_obj: Vec<u32>,
    /// Pin x-offset from the object center (absolute x for fixed pins).
    pub pin_off_x: Vec<f64>,
    /// Pin y-offset from the object center (absolute y for fixed pins).
    pub pin_off_y: Vec<f64>,
    /// Transpose row starts: `obj_pin_start[i] .. obj_pin_start[i + 1]`
    /// spans `obj_pin_ids` with object `i`'s movable pins on ≥ 2-pin nets.
    pub obj_pin_start: Vec<u32>,
    /// Flat pin indices of the transpose, ascending within each object.
    pub obj_pin_ids: Vec<u32>,
    /// Placement area.
    pub die: Rect,
    /// Mapping back to design nodes (finest level only; empty for coarse
    /// models, which map through cluster tables instead).
    pub node_of: Vec<NodeId>,
}

impl Model {
    /// Builds the finest-level model from a design and a placement
    /// (supplying initial object positions, fixed-pin anchors and macro
    /// orientations for pin offsets).
    pub fn from_design(design: &Design, placement: &Placement) -> Self {
        let movables: Vec<NodeId> = design.movable_ids().collect();
        let mut index_of = vec![u32::MAX; design.nodes().len()];
        for (i, &id) in movables.iter().enumerate() {
            index_of[id.index()] = i as u32;
        }

        let n = movables.len();
        let mut pos_x = Vec::with_capacity(n);
        let mut pos_y = Vec::with_capacity(n);
        let mut size = Vec::with_capacity(n);
        let mut area = Vec::with_capacity(n);
        let mut is_macro = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        for &id in &movables {
            let node = design.node(id);
            let (w, h) = placement.dims(design, id);
            let c = placement.center(id);
            pos_x.push(c.x);
            pos_y.push(c.y);
            size.push((w, h));
            area.push(w * h);
            is_macro.push(node.is_macro());
            region.push(node.region());
        }

        let total_pins: usize = design.net_ids().map(|nid| design.net(nid).degree()).sum();
        let mut net_weight = Vec::with_capacity(design.nets().len());
        let mut net_pin_start = Vec::with_capacity(design.nets().len() + 1);
        net_pin_start.push(0u32);
        let mut pin_obj = Vec::with_capacity(total_pins);
        let mut pin_off_x = Vec::with_capacity(total_pins);
        let mut pin_off_y = Vec::with_capacity(total_pins);
        for net_id in design.net_ids() {
            let net = design.net(net_id);
            for &pid in net.pins() {
                let pin = design.pin(pid);
                let node = pin.node();
                let oi = index_of[node.index()];
                if oi != u32::MAX {
                    // Offset under the node's current orientation.
                    let off = rdp_geom::transform::transform_offset(
                        pin.offset(),
                        placement.orient(node),
                    );
                    pin_obj.push(oi);
                    pin_off_x.push(off.x);
                    pin_off_y.push(off.y);
                } else {
                    let p = placement.pin_position(design, pid);
                    pin_obj.push(FIXED_PIN);
                    pin_off_x.push(p.x);
                    pin_off_y.push(p.y);
                }
            }
            net_weight.push(net.weight());
            net_pin_start.push(u32::try_from(pin_obj.len()).expect("pin count overflow"));
        }

        let mut model = Model {
            pos_x,
            pos_y,
            size,
            area,
            is_macro,
            region,
            net_weight,
            net_pin_start,
            pin_obj,
            pin_off_x,
            pin_off_y,
            obj_pin_start: Vec::new(),
            obj_pin_ids: Vec::new(),
            die: design.die(),
            node_of: movables,
        };
        model.rebuild_transpose();
        model
    }

    /// Builds a model from pre-assembled per-object arrays and net
    /// descriptions. Used by clustering and tests.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        positions: Vec<Point>,
        size: Vec<(f64, f64)>,
        area: Vec<f64>,
        is_macro: Vec<bool>,
        region: Vec<Option<RegionId>>,
        nets: &[ModelNet],
        die: Rect,
        node_of: Vec<NodeId>,
    ) -> Self {
        let mut model = Model {
            pos_x: positions.iter().map(|p| p.x).collect(),
            pos_y: positions.iter().map(|p| p.y).collect(),
            size,
            area,
            is_macro,
            region,
            net_weight: Vec::with_capacity(nets.len()),
            net_pin_start: vec![0],
            pin_obj: Vec::new(),
            pin_off_x: Vec::new(),
            pin_off_y: Vec::new(),
            obj_pin_start: Vec::new(),
            obj_pin_ids: Vec::new(),
            die,
            node_of,
        };
        for net in nets {
            model.push_net(net.weight, &net.pins);
        }
        model.rebuild_transpose();
        model
    }

    /// Appends one net to the CSR arena. The caller must finish with
    /// [`Model::rebuild_transpose`] before running any kernel.
    pub fn push_net(&mut self, weight: f64, pins: &[ModelPin]) {
        for p in pins {
            match p.obj {
                Some(o) => {
                    self.pin_obj.push(o);
                    self.pin_off_x.push(p.offset.x);
                    self.pin_off_y.push(p.offset.y);
                }
                None => {
                    self.pin_obj.push(FIXED_PIN);
                    self.pin_off_x.push(p.offset.x);
                    self.pin_off_y.push(p.offset.y);
                }
            }
        }
        self.net_weight.push(weight);
        self.net_pin_start
            .push(u32::try_from(self.pin_obj.len()).expect("pin count overflow"));
    }

    /// Rebuilds the object→pin transpose from the net CSR arrays.
    ///
    /// Only movable pins of non-degenerate (≥ 2-pin) nets are listed: a
    /// pin of a 0/1-pin net never contributes a gradient term, and adding
    /// even an exact `0.0` to an accumulator is not a bitwise no-op
    /// (`-0.0 + 0.0 == +0.0`), so the transpose must enumerate *exactly*
    /// the contribution set of the scatter it replaces.
    pub fn rebuild_transpose(&mut self) {
        let n = self.len();
        let mut counts = vec![0u32; n];
        for ni in 0..self.num_nets() {
            let span = self.net_pins(ni);
            if span.len() < 2 {
                continue;
            }
            for k in span {
                let o = self.pin_obj[k];
                if o != FIXED_PIN {
                    counts[o as usize] += 1;
                }
            }
        }
        let mut start = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        start.push(0);
        for &c in &counts {
            acc += c;
            start.push(acc);
        }
        let mut cursor = start.clone();
        let mut ids = vec![0u32; acc as usize];
        for ni in 0..self.num_nets() {
            let span = self.net_pins(ni);
            if span.len() < 2 {
                continue;
            }
            for k in span {
                let o = self.pin_obj[k];
                if o != FIXED_PIN {
                    let slot = &mut cursor[o as usize];
                    ids[*slot as usize] = k as u32;
                    *slot += 1;
                }
            }
        }
        self.obj_pin_start = start;
        self.obj_pin_ids = ids;
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos_x.len()
    }

    /// Whether the model has no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos_x.is_empty()
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_weight.len()
    }

    /// Total number of pins across all nets.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.pin_obj.len()
    }

    /// The pin-array index span of net `ni`.
    #[inline]
    pub fn net_pins(&self, ni: usize) -> std::ops::Range<usize> {
        self.net_pin_start[ni] as usize..self.net_pin_start[ni + 1] as usize
    }

    /// Degree (pin count) of net `ni`.
    #[inline]
    pub fn net_degree(&self, ni: usize) -> usize {
        (self.net_pin_start[ni + 1] - self.net_pin_start[ni]) as usize
    }

    /// The pin indices riding object `i` (movable pins of ≥ 2-pin nets).
    #[inline]
    pub fn obj_pins(&self, i: usize) -> &[u32] {
        &self.obj_pin_ids[self.obj_pin_start[i] as usize..self.obj_pin_start[i + 1] as usize]
    }

    /// Object center as a point.
    #[inline]
    pub fn pos(&self, i: usize) -> Point {
        Point::new(self.pos_x[i], self.pos_y[i])
    }

    /// Sets object center from a point.
    #[inline]
    pub fn set_pos(&mut self, i: usize, p: Point) {
        self.pos_x[i] = p.x;
        self.pos_y[i] = p.y;
    }

    /// Physical position of pin `k` at the current object positions.
    #[inline]
    pub fn pin_position(&self, k: usize) -> Point {
        let o = self.pin_obj[k];
        if o == FIXED_PIN {
            Point::new(self.pin_off_x[k], self.pin_off_y[k])
        } else {
            Point::new(
                self.pos_x[o as usize] + self.pin_off_x[k],
                self.pos_y[o as usize] + self.pin_off_y[k],
            )
        }
    }

    /// Object positions as points (a copy; for snapshots and level
    /// transfer).
    pub fn positions(&self) -> Vec<Point> {
        self.pos_x
            .iter()
            .zip(&self.pos_y)
            .map(|(&x, &y)| Point::new(x, y))
            .collect()
    }

    /// Overwrites all object positions from a point slice.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.len()`.
    pub fn set_positions(&mut self, positions: &[Point]) {
        assert_eq!(positions.len(), self.len());
        for (i, p) in positions.iter().enumerate() {
            self.pos_x[i] = p.x;
            self.pos_y[i] = p.y;
        }
    }

    /// Exact HPWL of the model at the current positions.
    pub fn hpwl(&self) -> f64 {
        (0..self.num_nets())
            .map(|ni| {
                let span = self.net_pins(ni);
                if span.is_empty() {
                    return 0.0;
                }
                let mut bb = Rect::empty();
                for k in span {
                    bb.expand_to(self.pin_position(k));
                }
                bb.half_perimeter()
            })
            .sum()
    }

    /// Weighted HPWL (each net scaled by its weight).
    pub fn weighted_hpwl(&self) -> f64 {
        (0..self.num_nets())
            .map(|ni| {
                let span = self.net_pins(ni);
                if span.is_empty() {
                    return 0.0;
                }
                let mut bb = Rect::empty();
                for k in span {
                    bb.expand_to(self.pin_position(k));
                }
                self.net_weight[ni] * bb.half_perimeter()
            })
            .sum()
    }

    /// Total movable (physical) area.
    pub fn total_area(&self) -> f64 {
        self.size.iter().map(|&(w, h)| w * h).sum()
    }

    /// Copies object positions back into `placement` for the design nodes
    /// this model was built from.
    ///
    /// # Panics
    ///
    /// Panics if called on a coarse model (no node mapping).
    pub fn write_back(&self, placement: &mut Placement) {
        assert_eq!(
            self.node_of.len(),
            self.len(),
            "write_back requires a finest-level model"
        );
        for (i, &id) in self.node_of.iter().enumerate() {
            placement.set_center(id, self.pos(i));
        }
    }

    /// Clamps every object center so its outline stays inside the die.
    pub fn clamp_to_die(&mut self) {
        for i in 0..self.len() {
            let (w, h) = self.size[i];
            self.pos_x[i] =
                rdp_geom::clamp(self.pos_x[i], self.die.xl + w / 2.0, self.die.xh - w / 2.0);
            self.pos_y[i] =
                rdp_geom::clamp(self.pos_y[i], self.die.yl + h / 2.0, self.die.yh - h / 2.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind};

    fn design() -> (Design, Placement) {
        let mut b = DesignBuilder::new("m");
        b.die(Rect::new(0.0, 0.0, 100.0, 100.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 100);
        let a = b.add_node("a", 4.0, 10.0, NodeKind::Movable).unwrap();
        let m = b.add_node("m", 20.0, 30.0, NodeKind::Movable).unwrap();
        let f = b.add_node("f", 10.0, 10.0, NodeKind::Fixed).unwrap();
        let n = b.add_net("n", 2.0);
        b.add_pin(n, a, Point::new(1.0, 1.0));
        b.add_pin(n, m, Point::ORIGIN);
        b.add_pin(n, f, Point::ORIGIN);
        let d = b.finish().unwrap();
        let mut pl = Placement::new_centered(&d);
        pl.set_center(a, Point::new(10.0, 5.0));
        pl.set_center(m, Point::new(50.0, 50.0));
        pl.set_center(f, Point::new(90.0, 90.0));
        (d, pl)
    }

    #[test]
    fn flattens_movables_and_anchors_fixed() {
        let (d, pl) = design();
        let model = Model::from_design(&d, &pl);
        assert_eq!(model.len(), 2);
        assert_eq!(model.is_macro, vec![false, true]);
        assert_eq!(model.num_nets(), 1);
        assert_eq!(model.net_weight[0], 2.0);
        assert_eq!(model.net_degree(0), 3);
        // Fixed pin is an absolute anchor.
        let fixed_k = model
            .net_pins(0)
            .find(|&k| model.pin_obj[k] == FIXED_PIN)
            .unwrap();
        assert_eq!(model.pin_position(fixed_k), Point::new(90.0, 90.0));
        // Movable pin rides its object.
        let a_k = model.net_pins(0).find(|&k| model.pin_obj[k] == 0).unwrap();
        assert_eq!(model.pin_position(a_k), Point::new(11.0, 6.0));
    }

    #[test]
    fn transpose_lists_movable_pins_ascending_and_skips_degenerate_nets() {
        let (d, pl) = design();
        let mut model = Model::from_design(&d, &pl);
        // Add a second net sharing object 0, plus a degenerate 1-pin net
        // whose pin must NOT appear in the transpose.
        model.push_net(
            1.0,
            &[ModelPin::movable(0, Point::ORIGIN), ModelPin::movable(1, Point::ORIGIN)],
        );
        model.push_net(1.0, &[ModelPin::movable(0, Point::new(2.0, 2.0))]);
        model.rebuild_transpose();

        let pins0 = model.obj_pins(0);
        let pins1 = model.obj_pins(1);
        // Object 0: pin 0 (net 0) and pin 3 (net 1); the 1-pin net's pin 5
        // is excluded. Object 1: pin 1 and pin 4.
        assert_eq!(pins0, &[0, 3]);
        assert_eq!(pins1, &[1, 4]);
        for pins in [pins0, pins1] {
            assert!(pins.windows(2).all(|w| w[0] < w[1]), "ascending order");
        }
    }

    #[test]
    fn hpwl_matches_db_hpwl() {
        let (d, pl) = design();
        let model = Model::from_design(&d, &pl);
        let expect = rdp_db::hpwl::total_hpwl(&d, &pl);
        assert!((model.hpwl() - expect).abs() < 1e-9);
        let wexpect = rdp_db::hpwl::weighted_hpwl(&d, &pl);
        assert!((model.weighted_hpwl() - wexpect).abs() < 1e-9);
    }

    #[test]
    fn write_back_round_trips() {
        let (d, pl) = design();
        let mut model = Model::from_design(&d, &pl);
        model.set_pos(0, Point::new(33.0, 44.0));
        let mut pl2 = pl.clone();
        model.write_back(&mut pl2);
        let a = d.find_node("a").unwrap();
        assert_eq!(pl2.center(a), Point::new(33.0, 44.0));
        // Fixed nodes untouched.
        let f = d.find_node("f").unwrap();
        assert_eq!(pl2.center(f), pl.center(f));
    }

    #[test]
    fn clamp_keeps_outlines_inside() {
        let (d, pl) = design();
        let mut model = Model::from_design(&d, &pl);
        model.set_pos(1, Point::new(-100.0, 500.0));
        model.clamp_to_die();
        let (w, h) = model.size[1];
        assert_eq!(model.pos(1), Point::new(w / 2.0, 100.0 - h / 2.0));
    }

    #[test]
    fn macro_orientation_rotates_offsets() {
        let (d, mut pl) = design();
        let m = d.find_node("m").unwrap();
        pl.set_orient(m, rdp_geom::Orient::E);
        let model = Model::from_design(&d, &pl);
        // Size swapped under E.
        assert_eq!(model.size[1], (30.0, 20.0));
    }

    #[test]
    fn positions_round_trip() {
        let (d, pl) = design();
        let mut model = Model::from_design(&d, &pl);
        let snap = model.positions();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], Point::new(10.0, 5.0));
        model.set_pos(0, Point::new(1.0, 2.0));
        model.set_positions(&snap);
        assert_eq!(model.pos(0), Point::new(10.0, 5.0));
    }
}
