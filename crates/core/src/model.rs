//! The analytical placement model: the movable-object view of a design
//! that the optimizer, clustering and density machinery operate on.
//!
//! A [`Model`] flattens the [`rdp_db::Design`] into index-based
//! arrays over *objects* (movable cells and macros at the finest level,
//! clusters at coarser levels) plus nets whose pins either ride an object
//! (with a center-relative offset) or are anchored at a fixed point
//! (fixed-node and terminal pins). This keeps the hot gradient loops free
//! of indirection through the full database.

use rdp_db::{Design, NodeId, Placement, RegionId};
use rdp_geom::{Point, Rect};

/// A pin of a [`ModelNet`]: either riding object `obj` at `offset` from its
/// center, or fixed in space at `offset` (absolute) when `obj` is `None`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPin {
    /// The object carrying the pin, or `None` for a fixed anchor.
    pub obj: Option<u32>,
    /// Center-relative offset (movable) or absolute position (fixed).
    pub offset: Point,
}

impl ModelPin {
    /// Pin riding a movable object.
    pub fn movable(obj: usize, offset: Point) -> Self {
        ModelPin { obj: Some(obj as u32), offset }
    }

    /// Pin fixed at an absolute position.
    pub fn fixed(position: Point) -> Self {
        ModelPin { obj: None, offset: position }
    }

    /// Physical position given the object positions `pos`.
    #[inline]
    pub fn position(&self, pos: &[Point]) -> Point {
        match self.obj {
            Some(o) => pos[o as usize] + self.offset,
            None => self.offset,
        }
    }
}

/// A net over model pins.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelNet {
    /// Net weight (multiplies its wirelength contribution).
    pub weight: f64,
    /// The pins; at least 2 after model construction.
    pub pins: Vec<ModelPin>,
}

/// The flattened placement problem the optimizer works on.
///
/// Invariants: `pos`, `size`, `area`, `is_macro` and `region` all have one
/// entry per object; `area[i]` is the *density* area (inflated during
/// routability optimization) while `size[i]` is the physical outline.
#[derive(Debug, Clone)]
pub struct Model {
    /// Object centers — the optimization variables.
    pub pos: Vec<Point>,
    /// Physical (width, height) per object.
    pub size: Vec<(f64, f64)>,
    /// Density area per object (≥ physical area; grows under inflation).
    pub area: Vec<f64>,
    /// Macro flag per object (macros get rotation handling and are never
    /// clustered).
    pub is_macro: Vec<bool>,
    /// Fence region per object.
    pub region: Vec<Option<RegionId>>,
    /// Nets.
    pub nets: Vec<ModelNet>,
    /// Placement area.
    pub die: Rect,
    /// Mapping back to design nodes (finest level only; empty for coarse
    /// models, which map through cluster tables instead).
    pub node_of: Vec<NodeId>,
}

impl Model {
    /// Builds the finest-level model from a design and a placement
    /// (supplying initial object positions, fixed-pin anchors and macro
    /// orientations for pin offsets).
    pub fn from_design(design: &Design, placement: &Placement) -> Self {
        let movables: Vec<NodeId> = design.movable_ids().collect();
        let mut index_of = vec![u32::MAX; design.nodes().len()];
        for (i, &id) in movables.iter().enumerate() {
            index_of[id.index()] = i as u32;
        }

        let mut pos = Vec::with_capacity(movables.len());
        let mut size = Vec::with_capacity(movables.len());
        let mut area = Vec::with_capacity(movables.len());
        let mut is_macro = Vec::with_capacity(movables.len());
        let mut region = Vec::with_capacity(movables.len());
        for &id in &movables {
            let n = design.node(id);
            let (w, h) = placement.dims(design, id);
            pos.push(placement.center(id));
            size.push((w, h));
            area.push(w * h);
            is_macro.push(n.is_macro());
            region.push(n.region());
        }

        let mut nets = Vec::with_capacity(design.nets().len());
        for net_id in design.net_ids() {
            let net = design.net(net_id);
            let mut pins = Vec::with_capacity(net.degree());
            for &pid in net.pins() {
                let pin = design.pin(pid);
                let node = pin.node();
                let oi = index_of[node.index()];
                if oi != u32::MAX {
                    // Offset under the node's current orientation.
                    let off = rdp_geom::transform::transform_offset(
                        pin.offset(),
                        placement.orient(node),
                    );
                    pins.push(ModelPin::movable(oi as usize, off));
                } else {
                    pins.push(ModelPin::fixed(placement.pin_position(design, pid)));
                }
            }
            nets.push(ModelNet { weight: net.weight(), pins });
        }

        Model {
            pos,
            size,
            area,
            is_macro,
            region,
            nets,
            die: design.die(),
            node_of: movables,
        }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the model has no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Exact HPWL of the model at the current positions.
    pub fn hpwl(&self) -> f64 {
        self.nets
            .iter()
            .map(|net| {
                let mut bb = Rect::empty();
                for p in &net.pins {
                    bb.expand_to(p.position(&self.pos));
                }
                if net.pins.is_empty() {
                    0.0
                } else {
                    bb.half_perimeter()
                }
            })
            .sum()
    }

    /// Weighted HPWL (each net scaled by its weight).
    pub fn weighted_hpwl(&self) -> f64 {
        self.nets
            .iter()
            .map(|net| {
                if net.pins.is_empty() {
                    return 0.0;
                }
                let mut bb = Rect::empty();
                for p in &net.pins {
                    bb.expand_to(p.position(&self.pos));
                }
                net.weight * bb.half_perimeter()
            })
            .sum()
    }

    /// Total movable (physical) area.
    pub fn total_area(&self) -> f64 {
        self.size.iter().map(|&(w, h)| w * h).sum()
    }

    /// Copies object positions back into `placement` for the design nodes
    /// this model was built from.
    ///
    /// # Panics
    ///
    /// Panics if called on a coarse model (no node mapping).
    pub fn write_back(&self, placement: &mut Placement) {
        assert_eq!(
            self.node_of.len(),
            self.pos.len(),
            "write_back requires a finest-level model"
        );
        for (i, &id) in self.node_of.iter().enumerate() {
            placement.set_center(id, self.pos[i]);
        }
    }

    /// Clamps every object center so its outline stays inside the die.
    pub fn clamp_to_die(&mut self) {
        for i in 0..self.len() {
            let (w, h) = self.size[i];
            let x = rdp_geom::clamp(self.pos[i].x, self.die.xl + w / 2.0, self.die.xh - w / 2.0);
            let y = rdp_geom::clamp(self.pos[i].y, self.die.yl + h / 2.0, self.die.yh - h / 2.0);
            self.pos[i] = Point::new(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind};

    fn design() -> (Design, Placement) {
        let mut b = DesignBuilder::new("m");
        b.die(Rect::new(0.0, 0.0, 100.0, 100.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 100);
        let a = b.add_node("a", 4.0, 10.0, NodeKind::Movable).unwrap();
        let m = b.add_node("m", 20.0, 30.0, NodeKind::Movable).unwrap();
        let f = b.add_node("f", 10.0, 10.0, NodeKind::Fixed).unwrap();
        let n = b.add_net("n", 2.0);
        b.add_pin(n, a, Point::new(1.0, 1.0));
        b.add_pin(n, m, Point::ORIGIN);
        b.add_pin(n, f, Point::ORIGIN);
        let d = b.finish().unwrap();
        let mut pl = Placement::new_centered(&d);
        pl.set_center(a, Point::new(10.0, 5.0));
        pl.set_center(m, Point::new(50.0, 50.0));
        pl.set_center(f, Point::new(90.0, 90.0));
        (d, pl)
    }

    #[test]
    fn flattens_movables_and_anchors_fixed() {
        let (d, pl) = design();
        let model = Model::from_design(&d, &pl);
        assert_eq!(model.len(), 2);
        assert_eq!(model.is_macro, vec![false, true]);
        assert_eq!(model.nets.len(), 1);
        let net = &model.nets[0];
        assert_eq!(net.weight, 2.0);
        assert_eq!(net.pins.len(), 3);
        // Fixed pin is an absolute anchor.
        let fixed_pin = net.pins.iter().find(|p| p.obj.is_none()).unwrap();
        assert_eq!(fixed_pin.position(&model.pos), Point::new(90.0, 90.0));
        // Movable pin rides its object.
        let a_pin = net.pins.iter().find(|p| p.obj == Some(0)).unwrap();
        assert_eq!(a_pin.position(&model.pos), Point::new(11.0, 6.0));
    }

    #[test]
    fn hpwl_matches_db_hpwl() {
        let (d, pl) = design();
        let model = Model::from_design(&d, &pl);
        let expect = rdp_db::hpwl::total_hpwl(&d, &pl);
        assert!((model.hpwl() - expect).abs() < 1e-9);
        let wexpect = rdp_db::hpwl::weighted_hpwl(&d, &pl);
        assert!((model.weighted_hpwl() - wexpect).abs() < 1e-9);
    }

    #[test]
    fn write_back_round_trips() {
        let (d, pl) = design();
        let mut model = Model::from_design(&d, &pl);
        model.pos[0] = Point::new(33.0, 44.0);
        let mut pl2 = pl.clone();
        model.write_back(&mut pl2);
        let a = d.find_node("a").unwrap();
        assert_eq!(pl2.center(a), Point::new(33.0, 44.0));
        // Fixed nodes untouched.
        let f = d.find_node("f").unwrap();
        assert_eq!(pl2.center(f), pl.center(f));
    }

    #[test]
    fn clamp_keeps_outlines_inside() {
        let (d, pl) = design();
        let mut model = Model::from_design(&d, &pl);
        model.pos[1] = Point::new(-100.0, 500.0);
        model.clamp_to_die();
        let (w, h) = model.size[1];
        assert_eq!(model.pos[1], Point::new(w / 2.0, 100.0 - h / 2.0));
    }

    #[test]
    fn macro_orientation_rotates_offsets() {
        let (d, mut pl) = design();
        let m = d.find_node("m").unwrap();
        pl.set_orient(m, rdp_geom::Orient::E);
        let model = Model::from_design(&d, &pl);
        // Size swapped under E.
        assert_eq!(model.size[1], (30.0, 20.0));
    }
}
