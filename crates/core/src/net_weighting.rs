//! Congestion-driven net weighting — the alternative routability mechanism
//! to cell inflation used by several contest-era placers (and listed as an
//! extension point of the paper's flow).
//!
//! Where inflation spreads *cells* out of hot spots, net weighting makes
//! the wirelength force pull *nets that cross hot spots* shorter, shrinking
//! the demand itself. Both mechanisms consume the same congestion map and
//! compose; the component-ablation table (T5) measures each.

use crate::model::Model;
use rdp_route::RouteGrid;

/// Net-weighting tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetWeightingConfig {
    /// Weight boost per unit of congestion-ratio excess:
    /// `factor = 1 + strength·(ratio − 1)`.
    pub strength: f64,
    /// Cap on the weight multiplier.
    pub max_factor: f64,
}

impl Default for NetWeightingConfig {
    fn default() -> Self {
        NetWeightingConfig { strength: 2.0, max_factor: 4.0 }
    }
}

/// Re-derives every net's weight from `base` (the design weights) times a
/// congestion factor sampled at its pins' gcells. Returns the number of
/// nets boosted above their base weight.
///
/// # Panics
///
/// Panics if `base.len() != model.num_nets()`.
pub fn apply_congestion_weights(
    model: &mut Model,
    grid: &RouteGrid,
    base: &[f64],
    config: NetWeightingConfig,
) -> usize {
    assert_eq!(base.len(), model.num_nets(), "base weight vector mismatch");
    let mut boosted = 0;
    for (ni, &b) in base.iter().enumerate() {
        let mut worst: f64 = 0.0;
        for k in model.net_pins(ni) {
            let pos = model.pin_position(k);
            worst = worst.max(grid.gcell_congestion(grid.gcell_of(pos)));
        }
        let factor = if worst > 1.0 {
            (1.0 + config.strength * (worst - 1.0)).min(config.max_factor)
        } else {
            1.0
        };
        let new = b * factor;
        if new > b + 1e-12 {
            boosted += 1;
        }
        model.net_weight[ni] = new;
    }
    boosted
}

/// Restores the base weights (used when a routability loop ends).
pub fn reset_weights(model: &mut Model, base: &[f64]) {
    for (w, &b) in model.net_weight.iter_mut().zip(base) {
        *w = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin};
    use rdp_geom::{Point, Rect};

    fn model_with_nets() -> Model {
        Model::from_parts(
            vec![Point::new(25.0, 25.0), Point::new(85.0, 85.0)],
            vec![(4.0, 10.0); 2],
            vec![40.0; 2],
            vec![false; 2],
            vec![None; 2],
            &[
                ModelNet {
                    weight: 1.0,
                    pins: vec![ModelPin::movable(0, Point::ORIGIN), ModelPin::fixed(Point::new(20.0, 20.0))],
                },
                ModelNet {
                    weight: 2.0,
                    pins: vec![ModelPin::movable(1, Point::ORIGIN), ModelPin::fixed(Point::new(90.0, 90.0))],
                },
            ],
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        )
    }

    fn hot_grid() -> RouteGrid {
        let mut g = RouteGrid::uniform(10, 10, Point::ORIGIN, 10.0, 10.0, 10.0, 10.0);
        g.add_usage(g.h_edge(2, 2), 20.0); // gcell (2,2) at ratio 2
        g
    }

    #[test]
    fn nets_through_hot_spots_gain_weight() {
        let mut m = model_with_nets();
        let base = vec![1.0, 2.0];
        let boosted = apply_congestion_weights(&mut m, &hot_grid(), &base, NetWeightingConfig::default());
        assert_eq!(boosted, 1);
        // Net 0 touches the hot gcell (ratio 2): factor 1 + 2·1 = 3.
        assert!((m.net_weight[0] - 3.0).abs() < 1e-9);
        // Net 1 is cold: base weight kept.
        assert_eq!(m.net_weight[1], 2.0);
    }

    #[test]
    fn factor_caps_and_recomputes_from_base() {
        let mut m = model_with_nets();
        let base = vec![1.0, 2.0];
        let mut g = hot_grid();
        g.add_usage(g.h_edge(2, 2), 200.0); // absurd ratio
        apply_congestion_weights(&mut m, &g, &base, NetWeightingConfig::default());
        assert!((m.net_weight[0] - 4.0).abs() < 1e-9, "capped at max_factor");
        // Applying twice does not compound (recomputed from base).
        apply_congestion_weights(&mut m, &g, &base, NetWeightingConfig::default());
        assert!((m.net_weight[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_base() {
        let mut m = model_with_nets();
        let base = vec![1.0, 2.0];
        apply_congestion_weights(&mut m, &hot_grid(), &base, NetWeightingConfig::default());
        reset_weights(&mut m, &base);
        assert_eq!(m.net_weight[0], 1.0);
        assert_eq!(m.net_weight[1], 2.0);
    }
}
