//! Continuous macro rotation — the *rotation force* of the unified
//! analytical mixed-size placement formulation (Hsu & Chang, ICCAD 2010),
//! which the DAC 2013 paper inherits.
//!
//! Each macro gets a continuous angle variable θ. A pin with as-designed
//! center offset `(dx, dy)` sits at the rotated offset
//! `(dx·cosθ − dy·sinθ, dx·sinθ + dy·cosθ)`, which is differentiable in θ,
//! so θ joins the analytical objective: the wirelength gradient with
//! respect to θ is the *rotation force*. After optimization each θ is
//! snapped to the nearest quarter turn (macros must be axis-aligned), and
//! the flipping decision is made by the discrete flipping pass.
//!
//! This module optimizes θ for all macros against the smooth wirelength
//! while positions stay fixed — the alternating scheme the original uses
//! (positions and angles are optimized in separate sub-steps).

use crate::model::{Model, FIXED_PIN};
use rdp_geom::{Orient, Point};

/// One macro's rotation state during continuous optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroAngle {
    /// Object index in the model.
    pub obj: u32,
    /// Current angle in radians (0 = as-designed orientation `N`).
    pub theta: f64,
}

/// Result of a continuous rotation optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct RotationOutcome {
    /// Final angles (same order as the input).
    pub angles: Vec<MacroAngle>,
    /// Quarter-turn snap of each angle (0..4 counter-clockwise).
    pub snapped: Vec<u8>,
    /// Gradient-descent iterations executed.
    pub iterations: usize,
}

/// Rotates `off` by `theta` radians counter-clockwise.
#[inline]
fn rotate(off: Point, theta: f64) -> Point {
    let (s, c) = theta.sin_cos();
    Point::new(off.x * c - off.y * s, off.x * s + off.y * c)
}

/// Smooth per-axis span and its gradient with respect to each coordinate,
/// specialized for the WA model (the default; LSE behaves equivalently for
/// this sub-problem and is not needed separately).
fn wa_axis_grad(coords: &[f64], gamma: f64, grad: &mut [f64]) -> f64 {
    let max = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = coords.iter().copied().fold(f64::INFINITY, f64::min);
    let (mut s_p, mut t_p, mut s_m, mut t_m) = (0.0, 0.0, 0.0, 0.0);
    for &x in coords {
        let ep = ((x - max) / gamma).exp();
        let em = ((min - x) / gamma).exp();
        s_p += ep;
        t_p += x * ep;
        s_m += em;
        t_m += x * em;
    }
    let f_max = t_p / s_p;
    let f_min = t_m / s_m;
    for (g, &x) in grad.iter_mut().zip(coords) {
        let ep = ((x - max) / gamma).exp();
        let em = ((min - x) / gamma).exp();
        *g = ep / s_p * (1.0 + (x - f_max) / gamma) - em / s_m * (1.0 - (x - f_min) / gamma);
    }
    f_max - f_min
}

/// Evaluates the smooth wirelength of the nets incident to any macro, with
/// macro pin offsets rotated by the given angles, and accumulates
/// `∂WL/∂θ` per macro.
///
/// Returns the smooth wirelength of the touched nets.
fn rotation_objective(
    model: &Model,
    angles: &[MacroAngle],
    gamma: f64,
    theta_grad: &mut [f64],
) -> f64 {
    let mut angle_of = vec![None::<(usize, f64)>; model.len()];
    for (k, a) in angles.iter().enumerate() {
        angle_of[a.obj as usize] = Some((k, a.theta));
    }
    theta_grad.iter_mut().for_each(|g| *g = 0.0);

    let mut total = 0.0;
    let mut xs = Vec::with_capacity(16);
    let mut ys = Vec::with_capacity(16);
    let mut gx = Vec::with_capacity(16);
    let mut gy = Vec::with_capacity(16);
    // d(pos)/d(theta) per pin, captured for the chain rule.
    let mut dpos = Vec::with_capacity(16);
    for ni in 0..model.num_nets() {
        let span = model.net_pins(ni);
        if span.len() < 2 {
            continue;
        }
        let touches_macro = span.clone().any(|k| {
            let o = model.pin_obj[k];
            o != FIXED_PIN && angle_of[o as usize].is_some()
        });
        if !touches_macro {
            continue;
        }
        xs.clear();
        ys.clear();
        dpos.clear();
        for pk in span {
            let o = model.pin_obj[pk];
            let offset = Point::new(model.pin_off_x[pk], model.pin_off_y[pk]);
            match (o != FIXED_PIN).then(|| angle_of[o as usize]).flatten() {
                Some((k, theta)) => {
                    let off = rotate(offset, theta);
                    let pos = model.pos(o as usize) + off;
                    xs.push(pos.x);
                    ys.push(pos.y);
                    // d/dθ (cosθ·dx − sinθ·dy, sinθ·dx + cosθ·dy)
                    //   = (−sinθ·dx − cosθ·dy, cosθ·dx − sinθ·dy).
                    let (s, c) = theta.sin_cos();
                    dpos.push(Some((
                        k,
                        Point::new(-s * offset.x - c * offset.y, c * offset.x - s * offset.y),
                    )));
                }
                None => {
                    let pos = model.pin_position(pk);
                    xs.push(pos.x);
                    ys.push(pos.y);
                    dpos.push(None);
                }
            }
        }
        gx.resize(xs.len(), 0.0);
        gy.resize(ys.len(), 0.0);
        let wx = wa_axis_grad(&xs, gamma, &mut gx);
        let wy = wa_axis_grad(&ys, gamma, &mut gy);
        total += model.net_weight[ni] * (wx + wy);
        for (i, d) in dpos.iter().enumerate() {
            if let Some((k, dp)) = d {
                theta_grad[*k] += model.net_weight[ni] * (gx[i] * dp.x + gy[i] * dp.y);
            }
        }
    }
    total
}

/// Optimizes the rotation angles of all macros in `model` by gradient
/// descent on the smooth wirelength (positions fixed), then snaps each to
/// the nearest quarter turn.
///
/// `gamma` should match the global placer's current smoothing; `iters`
/// bounds the descent (the sub-problem is low-dimensional and converges in
/// a few dozen steps).
pub fn optimize_rotation_continuous(
    model: &Model,
    gamma: f64,
    iters: usize,
) -> RotationOutcome {
    let mut angles: Vec<MacroAngle> = (0..model.len() as u32)
        .filter(|&i| model.is_macro[i as usize])
        .map(|obj| MacroAngle { obj, theta: 0.0 })
        .collect();
    if angles.is_empty() {
        return RotationOutcome { angles, snapped: Vec::new(), iterations: 0 };
    }
    // The wirelength-in-θ landscape has barriers between quarter turns
    // (rotating a pin through the "wrong" side first raises the span), so
    // pure descent from 0 can stall in a local minimum. Initialize each
    // macro at its best canonical angle — the coordinate-wise global probe —
    // and let the continuous descent refine from there.
    let mut scratch = vec![0.0; angles.len()];
    for k in 0..angles.len() {
        let mut best_theta = 0.0;
        let mut best_val = f64::INFINITY;
        for q in 0..4 {
            let theta = f64::from(q) * std::f64::consts::FRAC_PI_2;
            let saved = angles[k].theta;
            angles[k].theta = theta;
            let val = rotation_objective(model, &angles, gamma, &mut scratch);
            angles[k].theta = saved;
            if val < best_val {
                best_val = val;
                best_theta = theta;
            }
        }
        angles[k].theta = best_theta;
    }
    let mut grad = vec![0.0; angles.len()];
    let mut iterations = 0;
    let mut step = 0.2; // radians, shrinks on failure to improve
    let mut best = rotation_objective(model, &angles, gamma, &mut grad);
    for _ in 0..iters {
        iterations += 1;
        let candidate: Vec<MacroAngle> = angles
            .iter()
            .zip(&grad)
            .map(|(a, &g)| MacroAngle { obj: a.obj, theta: a.theta - step * g.signum() * g.abs().min(1.0) })
            .collect();
        let mut cgrad = vec![0.0; angles.len()];
        let value = rotation_objective(model, &candidate, gamma, &mut cgrad);
        if value < best - 1e-9 {
            best = value;
            angles = candidate;
            grad = cgrad;
        } else {
            step *= 0.5;
            if step < 1e-3 {
                break;
            }
        }
    }
    let snapped = angles
        .iter()
        .map(|a| {
            let quarter = (a.theta / std::f64::consts::FRAC_PI_2).round();
            ((quarter.rem_euclid(4.0)) as u8) % 4
        })
        .collect();
    RotationOutcome { angles, snapped, iterations }
}

/// Maps a quarter-turn count to the unflipped [`Orient`].
pub fn orient_of_quarter(q: u8) -> Orient {
    Orient::from_parts(q % 4, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin};
    use rdp_geom::Rect;

    /// One macro at the center with a right-edge pin, anchored to a point.
    fn macro_model(anchor: Point) -> Model {
        Model::from_parts(
            vec![Point::new(100.0, 100.0)],
            vec![(40.0, 20.0)],
            vec![800.0],
            vec![true],
            vec![None],
            &[ModelNet {
                weight: 1.0,
                pins: vec![
                    ModelPin::movable(0, Point::new(18.0, 0.0)),
                    ModelPin::fixed(anchor),
                ],
            }],
            Rect::new(0.0, 0.0, 200.0, 200.0),
            vec![],
        )
    }

    #[test]
    fn rotate_matches_quarter_turns() {
        let p = Point::new(3.0, 1.0);
        let q1 = rotate(p, std::f64::consts::FRAC_PI_2);
        assert!((q1.x - -1.0).abs() < 1e-12 && (q1.y - 3.0).abs() < 1e-12);
        let q2 = rotate(p, std::f64::consts::PI);
        assert!((q2.x - -3.0).abs() < 1e-12 && (q2.y - -1.0).abs() < 1e-12);
    }

    #[test]
    fn theta_gradient_matches_finite_difference() {
        let model = macro_model(Point::new(40.0, 160.0));
        let angles = vec![MacroAngle { obj: 0, theta: 0.3 }];
        let mut grad = vec![0.0];
        rotation_objective(&model, &angles, 4.0, &mut grad);
        let h = 1e-6;
        let mut g1 = vec![0.0];
        let mut g2 = vec![0.0];
        let fp = rotation_objective(&model, &[MacroAngle { obj: 0, theta: 0.3 + h }], 4.0, &mut g1);
        let fm = rotation_objective(&model, &[MacroAngle { obj: 0, theta: 0.3 - h }], 4.0, &mut g2);
        let fd = (fp - fm) / (2.0 * h);
        assert!(
            (fd - grad[0]).abs() < 1e-5 * (1.0 + fd.abs()),
            "fd {fd} vs analytic {}",
            grad[0]
        );
    }

    #[test]
    fn pin_rotates_toward_left_anchor() {
        // Anchor to the LEFT of the macro: the right-edge pin should rotate
        // to face left — θ near ±π, snapping to quarter 2 (orientation S).
        let model = macro_model(Point::new(10.0, 100.0));
        let out = optimize_rotation_continuous(&model, 4.0, 200);
        assert_eq!(out.snapped.len(), 1);
        assert_eq!(out.snapped[0], 2, "theta {} should snap to a half turn", out.angles[0].theta);
    }

    #[test]
    fn pin_stays_for_right_anchor() {
        let model = macro_model(Point::new(190.0, 100.0));
        let out = optimize_rotation_continuous(&model, 4.0, 200);
        assert_eq!(out.snapped[0], 0, "already optimal: no rotation");
    }

    #[test]
    fn pin_rotates_up_for_top_anchor() {
        let model = macro_model(Point::new(100.0, 190.0));
        let out = optimize_rotation_continuous(&model, 4.0, 200);
        assert_eq!(out.snapped[0], 1, "theta {} should snap to a quarter turn", out.angles[0].theta);
    }

    #[test]
    fn no_macros_is_a_noop() {
        let mut model = macro_model(Point::new(10.0, 10.0));
        model.is_macro[0] = false;
        let out = optimize_rotation_continuous(&model, 4.0, 50);
        assert!(out.angles.is_empty());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn quarter_to_orient() {
        assert_eq!(orient_of_quarter(0), Orient::N);
        assert_eq!(orient_of_quarter(1), Orient::W);
        assert_eq!(orient_of_quarter(2), Orient::S);
        assert_eq!(orient_of_quarter(3), Orient::E);
    }
}
