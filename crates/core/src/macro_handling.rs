//! Macro orientation optimization — the mixed-size "rotation force" and
//! "flipping force" of the unified analytical placement line of work,
//! realized as periodic discrete re-selection.
//!
//! The original formulation adds a continuous rotation variable per macro
//! to the analytical objective. This reproduction substitutes a discrete
//! variant (documented in DESIGN.md): between penalty rounds, each macro
//! greedily adopts whichever of the eight Bookshelf orientations minimizes
//! the exact HPWL of its incident nets, holding everything else fixed.
//! It optimizes the same objective term and is robust at the design sizes
//! we run.

use rdp_db::{Design, NetId, NodeId, Placement};
use rdp_geom::{transform, Orient, Rect};

/// HPWL of `nets` under `placement`, with the pins of `node` overridden to
/// orientation `orient`.
fn incident_hpwl(
    design: &Design,
    placement: &Placement,
    node: NodeId,
    orient: Orient,
    nets: &[NetId],
) -> f64 {
    let center = placement.center(node);
    let mut total = 0.0;
    for &net in nets {
        let mut bb = Rect::empty();
        for &pid in design.net(net).pins() {
            let pin = design.pin(pid);
            let pos = if pin.node() == node {
                center + transform::transform_offset(pin.offset(), orient)
            } else {
                placement.pin_position(design, pid)
            };
            bb.expand_to(pos);
        }
        total += design.net(net).weight() * bb.half_perimeter();
    }
    total
}

/// Distinct nets incident to `node`.
fn incident_nets(design: &Design, node: NodeId) -> Vec<NetId> {
    let mut nets: Vec<NetId> = design
        .node_pins(node)
        .iter()
        .map(|&p| design.pin(p).net())
        .collect();
    nets.sort();
    nets.dedup();
    nets
}

/// Re-selects the orientation of every movable macro to the incident-HPWL
/// argmin. Returns the number of macros whose orientation changed.
///
/// `allow_rotation = false` restricts the search to `{N, FN, S, FS}`
/// (flipping only, no dimension swap) — the ablation mode of experiment
/// **T5**.
pub fn optimize_macro_orientations(
    design: &Design,
    placement: &mut Placement,
    allow_rotation: bool,
) -> usize {
    let mut changed = 0;
    for id in design.macro_ids() {
        let nets = incident_nets(design, id);
        if nets.is_empty() {
            continue;
        }
        let current = placement.orient(id);
        let candidates: &[Orient] = if allow_rotation {
            &Orient::ALL
        } else {
            &[Orient::N, Orient::FN, Orient::S, Orient::FS]
        };
        let mut best = current;
        let mut best_wl = incident_hpwl(design, placement, id, current, &nets);
        for &o in candidates {
            if o == current {
                continue;
            }
            let wl = incident_hpwl(design, placement, id, o, &nets);
            if wl + 1e-9 < best_wl {
                best_wl = wl;
                best = o;
            }
        }
        if best != current {
            placement.set_orient(id, best);
            changed += 1;
        }
    }
    changed
}

/// Mirror-flip pass for standard cells (`N` ↔ `FN`): adopts the flip when
/// it reduces incident HPWL. Returns the number of cells flipped. Run
/// during detailed placement, after legalization (flipping preserves the
/// outline, so legality is unaffected).
pub fn flip_std_cells(design: &Design, placement: &mut Placement) -> usize {
    let mut flipped = 0;
    for id in design.node_ids() {
        if !design.node(id).is_std_cell() {
            continue;
        }
        let nets = incident_nets(design, id);
        if nets.is_empty() {
            continue;
        }
        let current = placement.orient(id);
        let alt = current.flipped();
        let cur_wl = incident_hpwl(design, placement, id, current, &nets);
        let alt_wl = incident_hpwl(design, placement, id, alt, &nets);
        if alt_wl + 1e-9 < cur_wl {
            placement.set_orient(id, alt);
            flipped += 1;
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{DesignBuilder, NodeKind};
    use rdp_geom::Point;

    /// A macro with one off-center pin, pulled by a fixed anchor.
    fn macro_design(anchor: Point) -> (Design, NodeId) {
        let mut b = DesignBuilder::new("mo");
        b.die(Rect::new(0.0, 0.0, 200.0, 200.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 200);
        let m = b.add_node("m", 40.0, 20.0, NodeKind::Movable).unwrap();
        let t = b.add_node("t", 1.0, 1.0, NodeKind::FixedNi).unwrap();
        let n = b.add_net("n", 1.0);
        // Pin on the right edge of the macro (N orientation).
        b.add_pin(n, m, Point::new(18.0, 0.0));
        b.add_pin(n, t, Point::ORIGIN);
        let d = b.finish().unwrap();
        let mut pl = Placement::new_centered(&d);
        pl.set_center(m, Point::new(100.0, 100.0));
        let tid = d.find_node("t").unwrap();
        pl.set_center(tid, anchor);
        (d, m)
    }

    #[test]
    fn rotation_turns_pin_toward_anchor() {
        // Anchor on the LEFT: flipping the macro moves the pin from the
        // right edge to the left edge, saving ~36 units of wire.
        let (d, m) = macro_design(Point::new(10.0, 100.0));
        let mut pl = rdp_db::Placement::new_centered(&d);
        pl.set_center(m, Point::new(100.0, 100.0));
        let t = d.find_node("t").unwrap();
        pl.set_center(t, Point::new(10.0, 100.0));
        let before = rdp_db::hpwl::total_hpwl(&d, &pl);
        let changed = optimize_macro_orientations(&d, &mut pl, true);
        let after = rdp_db::hpwl::total_hpwl(&d, &pl);
        assert_eq!(changed, 1);
        assert!(after < before, "HPWL {after} !< {before}");
        assert_ne!(pl.orient(m), Orient::N);
    }

    #[test]
    fn already_optimal_orientation_is_kept() {
        // Anchor to the RIGHT: the N orientation (pin on the right) is
        // already best.
        let (d, m) = macro_design(Point::new(190.0, 100.0));
        let mut pl = rdp_db::Placement::new_centered(&d);
        pl.set_center(m, Point::new(100.0, 100.0));
        let t = d.find_node("t").unwrap();
        pl.set_center(t, Point::new(190.0, 100.0));
        let changed = optimize_macro_orientations(&d, &mut pl, true);
        assert_eq!(changed, 0);
        assert_eq!(pl.orient(m), Orient::N);
    }

    #[test]
    fn rotation_restriction_respected() {
        let (d, m) = macro_design(Point::new(100.0, 10.0));
        let mut pl = rdp_db::Placement::new_centered(&d);
        pl.set_center(m, Point::new(100.0, 100.0));
        let t = d.find_node("t").unwrap();
        pl.set_center(t, Point::new(100.0, 10.0));
        optimize_macro_orientations(&d, &mut pl, false);
        // Without rotation, dims must not swap.
        assert!(!pl.orient(m).swaps_dimensions());
    }

    #[test]
    fn std_cell_flip_reduces_hpwl() {
        let mut b = DesignBuilder::new("fl");
        b.die(Rect::new(0.0, 0.0, 100.0, 100.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 100);
        let c = b.add_node("c", 8.0, 10.0, NodeKind::Movable).unwrap();
        let t = b.add_node("t", 1.0, 1.0, NodeKind::FixedNi).unwrap();
        let n = b.add_net("n", 1.0);
        b.add_pin(n, c, Point::new(3.0, 0.0)); // pin near right edge
        b.add_pin(n, t, Point::ORIGIN);
        let d = b.finish().unwrap();
        let mut pl = Placement::new_centered(&d);
        let cid = d.find_node("c").unwrap();
        let tid = d.find_node("t").unwrap();
        pl.set_center(cid, Point::new(50.0, 5.0));
        pl.set_center(tid, Point::new(5.0, 5.0)); // anchor on the left
        let before = rdp_db::hpwl::total_hpwl(&d, &pl);
        let flipped = flip_std_cells(&d, &mut pl);
        assert_eq!(flipped, 1);
        assert_eq!(pl.orient(cid), Orient::FN);
        assert!(rdp_db::hpwl::total_hpwl(&d, &pl) < before);
        // A second pass is a fixpoint.
        assert_eq!(flip_std_cells(&d, &mut pl), 0);
    }
}
