#![warn(missing_docs)]
//! Routability-driven analytical placement for hierarchical mixed-size
//! circuit designs — the core of the `rdp` reproduction of NTUplace4h
//! (Hsu, Chen, Huang, Chen, Chang — DAC 2013).
//!
//! The pipeline, orchestrated by [`Placer`]:
//!
//! 1. **hierarchy-aware multilevel clustering** ([`cluster`]) — fence
//!    regions and macros survive coarsening intact;
//! 2. **analytical global placement** ([`optimizer`]) — conjugate gradient
//!    on a smooth wirelength model ([`wirelength`]: LSE or the
//!    weighted-average model) plus a bell-shaped density penalty
//!    ([`density`]) with per-fence density fields and a fence pull-in
//!    force ([`fence`]);
//! 3. **macro rotation/flipping** ([`macro_handling`]);
//! 4. **routability optimization** ([`inflation`]) — congestion-estimate →
//!    cell inflation → re-place loop against `rdp-route`;
//! 5. **legalization** ([`legalize`]) — macros first, then row/site-legal
//!    standard cells via Tetris assignment + Abacus packing, fence-aware;
//! 6. **detailed placement** ([`detail`]) — congestion-aware cell moves,
//!    window reordering and cell flipping.
//!
//! # Examples
//!
//! ```
//! use rdp_core::{PlaceOptions, Placer};
//! use rdp_gen::{generate, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = generate(&GeneratorConfig::tiny("demo", 1))?;
//! let result = Placer::new(&bench.design, PlaceOptions::fast()).run()?;
//! println!("HPWL {:.0} after {:?}", result.hpwl, result.elapsed);
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod density;
pub mod detail;
pub mod electrostatics;
pub mod faultinject;
pub mod fence;
pub mod fused;
pub mod inflation;
pub mod legalize;
pub mod macro_handling;
pub mod model;
pub mod net_weighting;
pub mod optimizer;
mod placer;
pub mod recovery;
pub mod reference;
pub mod rotation;
pub mod trace;
pub mod wirelength;

pub use model::Model;
pub use optimizer::{GpDensityModel, GpOptions, GpOutcome, GpSolver};
pub use placer::{
    CongestionSchedule, CongestionSource, GpRoutabilityOptions, GpRoutabilityOptionsBuilder,
    PlaceError, PlaceOptions, PlaceResult, Placer, RotationMode,
};
pub use placer::FlowProgress;
pub use recovery::{
    CheckpointParseError, DegradedResult, Diverged, FlowBudget, FlowCheckpoint, RecoveryEvent,
    RecoveryPolicy,
};
pub use trace::Trace;
pub use wirelength::WirelengthModel;
