//! Congestion-aware detailed placement: global cell swapping, intra-row
//! window reordering, and cell flipping on a legalized placement.
//!
//! All moves preserve legality by construction (equal-footprint swaps,
//! within-gap reordering, outline-preserving flips). When a congestion map
//! is supplied, moves into hot gcells must additionally pay for the
//! congestion they add — the paper's congestion-aware detailed placement.

use crate::macro_handling::flip_std_cells;
use rdp_db::{Design, NetId, NodeId, Placement};
use rdp_geom::{Point, Rect};
use rdp_route::RouteGrid;

/// Knobs for the detailed placement passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailOptions {
    /// Rounds of (swap + reorder + flip [+ ISM]).
    pub passes: usize,
    /// Congestion price: HPWL gain required per unit of congestion-ratio
    /// increase at the destination (0 = congestion-blind).
    pub congestion_weight: f64,
    /// Also run independent-set matching (exact slot re-assignment within
    /// net-disjoint batches of equal-footprint cells). Off by default —
    /// it subsumes many swaps at higher cost per pass.
    pub ism: bool,
    /// Batch size for ISM (assignment solved exactly by permutation;
    /// values ≤ 6 are practical).
    pub ism_batch: usize,
    /// Also run gap relocation (single-cell moves into free row gaps near
    /// the incident-net optimum). Off by default.
    pub relocate: bool,
}

impl Default for DetailOptions {
    fn default() -> Self {
        DetailOptions {
            passes: 2,
            congestion_weight: 0.0,
            ism: false,
            ism_batch: 4,
            relocate: false,
        }
    }
}

/// Summary of a detailed-placement run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetailStats {
    /// Accepted global swaps.
    pub swaps: usize,
    /// Accepted window reorders.
    pub reorders: usize,
    /// Accepted flips.
    pub flips: usize,
    /// HPWL before the run.
    pub hpwl_before: f64,
    /// HPWL after the run.
    pub hpwl_after: f64,
}

/// HPWL of the nets incident to any node in `nodes`.
fn nets_hpwl(design: &Design, placement: &Placement, nets: &[NetId]) -> f64 {
    let mut total = 0.0;
    for &net in nets {
        let mut bb = Rect::empty();
        for &pid in design.net(net).pins() {
            bb.expand_to(placement.pin_position(design, pid));
        }
        total += design.net(net).weight() * bb.half_perimeter();
    }
    total
}

/// Distinct nets incident to `nodes`.
fn incident_nets(design: &Design, nodes: &[NodeId]) -> Vec<NetId> {
    let mut nets: Vec<NetId> = nodes
        .iter()
        .flat_map(|&n| design.node_pins(n).iter().map(|&p| design.pin(p).net()))
        .collect();
    nets.sort();
    nets.dedup();
    nets
}

/// The congestion ratio at a point (0 with no map).
fn congestion_at(map: Option<&RouteGrid>, p: Point) -> f64 {
    map.map(|g| g.gcell_congestion(g.gcell_of(p))).unwrap_or(0.0)
}

/// One pass of global swapping: every standard cell proposes to swap with
/// the equal-footprint cell nearest its incident-net optimal position;
/// the swap is accepted when the HPWL gain exceeds the congestion price.
/// Returns the number of accepted swaps.
pub fn global_swap_pass(
    design: &Design,
    placement: &mut Placement,
    congestion: Option<&RouteGrid>,
    congestion_weight: f64,
) -> usize {
    let cells: Vec<NodeId> = design
        .node_ids()
        .filter(|&id| design.node(id).is_std_cell())
        .collect();
    if cells.len() < 2 {
        return 0;
    }

    // Spatial buckets for candidate lookup.
    let die = design.die();
    let buckets_per_axis = ((cells.len() as f64).sqrt().ceil() as usize).clamp(4, 64);
    let bw = die.width() / buckets_per_axis as f64;
    let bh = die.height() / buckets_per_axis as f64;
    let bucket_of = |p: Point| -> (usize, usize) {
        (
            (((p.x - die.xl) / bw) as usize).min(buckets_per_axis - 1),
            (((p.y - die.yl) / bh) as usize).min(buckets_per_axis - 1),
        )
    };
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); buckets_per_axis * buckets_per_axis];
    for &id in &cells {
        let (bx, by) = bucket_of(placement.center(id));
        buckets[by * buckets_per_axis + bx].push(id);
    }

    let mut swaps = 0;
    for &id in &cells {
        let nets = incident_nets(design, &[id]);
        if nets.is_empty() {
            continue;
        }
        // Optimal position: center of the bounding box of incident nets'
        // other pins.
        let mut bb = Rect::empty();
        for &net in &nets {
            for &pid in design.net(net).pins() {
                if design.pin(pid).node() != id {
                    bb.expand_to(placement.pin_position(design, pid));
                }
            }
        }
        if bb.is_empty() {
            continue;
        }
        let target = bb.center();
        if target.manhattan(placement.center(id)) < bw {
            continue; // already near-optimal
        }
        // Candidates: equal-footprint cells in the target's bucket
        // neighborhood.
        let (tbx, tby) = bucket_of(target);
        let my_dims = placement.dims(design, id);
        let my_region = design.node(id).region();
        let mut best: Option<(f64, NodeId)> = None;
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let bx = tbx as i64 + dx;
                let by = tby as i64 + dy;
                if bx < 0 || by < 0 || bx >= buckets_per_axis as i64 || by >= buckets_per_axis as i64 {
                    continue;
                }
                for &cand in &buckets[by as usize * buckets_per_axis + bx as usize] {
                    if cand == id
                        || placement.dims(design, cand) != my_dims
                        || design.node(cand).region() != my_region
                    {
                        continue;
                    }
                    let all_nets = incident_nets(design, &[id, cand]);
                    let before = nets_hpwl(design, placement, &all_nets);
                    let (pa, pb) = (placement.center(id), placement.center(cand));
                    placement.set_center(id, pb);
                    placement.set_center(cand, pa);
                    let after = nets_hpwl(design, placement, &all_nets);
                    placement.set_center(id, pa);
                    placement.set_center(cand, pb);
                    // Congestion price: moving each cell into its new gcell.
                    let price = congestion_weight
                        * ((congestion_at(congestion, pb) - congestion_at(congestion, pa)).max(0.0));
                    let gain = before - after - price;
                    if gain > 1e-9 && best.map(|(g, _)| gain > g).unwrap_or(true) {
                        best = Some((gain, cand));
                    }
                }
            }
        }
        if let Some((_, cand)) = best {
            let (pa, pb) = (placement.center(id), placement.center(cand));
            placement.set_center(id, pb);
            placement.set_center(cand, pa);
            swaps += 1;
        }
    }
    swaps
}

/// One pass of intra-row window reordering: for every run of `window`
/// consecutive cells in a row, tries all permutations packed into the same
/// span and keeps the best. Returns accepted reorders.
pub fn reorder_pass(design: &Design, placement: &mut Placement, window: usize) -> usize {
    // Group std cells by row y.
    let mut by_row: std::collections::HashMap<i64, Vec<NodeId>> = std::collections::HashMap::new();
    for id in design.node_ids() {
        if design.node(id).is_std_cell() {
            let y = placement.lower_left(design, id).y;
            by_row.entry((y * 1024.0).round() as i64).or_default().push(id);
        }
    }
    let mut rows: Vec<_> = by_row.into_iter().collect();
    rows.sort_by_key(|(y, _)| *y);

    let mut accepted = 0;
    for (_, mut cells) in rows {
        cells.sort_by(|&a, &b| {
            placement
                .lower_left(design, a)
                .x
                .partial_cmp(&placement.lower_left(design, b).x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if cells.len() < window {
            continue;
        }
        for start in 0..=cells.len() - window {
            let slice: Vec<NodeId> = cells[start..start + window].to_vec();
            // Only reorder windows of abutting cells: a permutation then
            // repacks exactly the same span, so it can neither spill into a
            // gap (which might hold an obstacle) nor collide with neighbors.
            let left = placement.lower_left(design, slice[0]).x;
            let contiguous = slice.windows(2).all(|w| {
                (placement.rect(design, w[0]).xh - placement.lower_left(design, w[1]).x).abs() < 1e-6
            });
            // Cells abutting across a fence boundary must not trade places.
            let same_region = slice
                .iter()
                .all(|&id| design.node(id).region() == design.node(slice[0]).region());
            if !contiguous || !same_region {
                continue;
            }
            let nets = incident_nets(design, &slice);
            let before = nets_hpwl(design, placement, &nets);
            let orig: Vec<Point> = slice.iter().map(|&id| placement.lower_left(design, id)).collect();
            let y = orig[0].y;

            let mut best_perm: Option<(f64, Vec<usize>)> = None;
            let mut perm: Vec<usize> = (0..window).collect();
            // Heap's algorithm over the tiny window.
            fn heaps(k: usize, perm: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
                if k <= 1 {
                    out.push(perm.clone());
                    return;
                }
                for i in 0..k {
                    heaps(k - 1, perm, out);
                    if k.is_multiple_of(2) {
                        perm.swap(i, k - 1);
                    } else {
                        perm.swap(0, k - 1);
                    }
                }
            }
            let mut perms = Vec::new();
            heaps(window, &mut perm, &mut perms);
            for p in &perms {
                let mut x = left;
                for &k in p {
                    placement.set_lower_left(design, slice[k], Point::new(x, y));
                    x += placement.rect(design, slice[k]).width();
                }
                let wl = nets_hpwl(design, placement, &nets);
                if wl + 1e-9 < before && best_perm.as_ref().map(|(w, _)| wl < *w).unwrap_or(true) {
                    best_perm = Some((wl, p.clone()));
                }
            }
            match best_perm {
                Some((_, p)) => {
                    let mut x = left;
                    for &k in &p {
                        placement.set_lower_left(design, slice[k], Point::new(x, y));
                        x += placement.rect(design, slice[k]).width();
                    }
                    // Keep the row's cell list x-sorted so later windows see
                    // consistent ordering.
                    for (slot, &k) in p.iter().enumerate() {
                        cells[start + slot] = slice[k];
                    }
                    accepted += 1;
                }
                None => {
                    // Restore.
                    for (k, &id) in slice.iter().enumerate() {
                        placement.set_lower_left(design, id, orig[k]);
                    }
                }
            }
        }
    }
    accepted
}

/// One pass of gap relocation: each standard cell may move into a free gap
/// near its incident-net optimal position — the move swaps cannot express
/// when no equal-footprint partner exists there. Vacated space is not
/// reused within the pass (gaps only shrink), which keeps the bookkeeping
/// exact. Returns the number of relocations.
pub fn relocate_pass(
    design: &Design,
    placement: &mut Placement,
    congestion: Option<&RouteGrid>,
    congestion_weight: f64,
) -> usize {
    use crate::legalize::build_segments;
    // Obstacles: fixed blocks (shape-aware) and macros at their positions.
    let obstacles: Vec<Rect> = design
        .node_ids()
        .filter(|&id| {
            let n = design.node(id);
            n.kind() == rdp_db::NodeKind::Fixed || n.is_macro()
        })
        .flat_map(|id| design.blocking_rects(id, placement))
        .collect();
    let segments = build_segments(design, &obstacles);

    // Free gaps per segment, derived from the cells currently in it.
    struct Gap {
        row: usize,
        region: Option<rdp_db::RegionId>,
        lo: f64,
        hi: f64,
    }
    let mut gaps: Vec<Gap> = Vec::new();
    for seg in &segments {
        let row = design.rows()[seg.row];
        let mut spans: Vec<(f64, f64)> = design
            .node_ids()
            .filter(|&id| design.node(id).is_std_cell())
            .map(|id| placement.rect(design, id))
            .filter(|r| (r.yl - row.y()).abs() < 1e-6 && r.xl >= seg.interval.lo - 1e-6 && r.xh <= seg.interval.hi + 1e-6)
            .map(|r| (r.xl, r.xh))
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut cursor = seg.interval.lo;
        for (xl, xh) in spans {
            if xl > cursor + 1e-9 {
                gaps.push(Gap { row: seg.row, region: seg.region, lo: cursor, hi: xl });
            }
            cursor = cursor.max(xh);
        }
        if seg.interval.hi > cursor + 1e-9 {
            gaps.push(Gap { row: seg.row, region: seg.region, lo: cursor, hi: seg.interval.hi });
        }
    }

    let site = design.rows().first().map(|r| r.site_width()).unwrap_or(1.0);
    let mut moves = 0;
    for id in design.node_ids() {
        if !design.node(id).is_std_cell() {
            continue;
        }
        let nets = incident_nets(design, &[id]);
        if nets.is_empty() {
            continue;
        }
        let mut bb = Rect::empty();
        for &net in &nets {
            for &pid in design.net(net).pins() {
                if design.pin(pid).node() != id {
                    bb.expand_to(placement.pin_position(design, pid));
                }
            }
        }
        if bb.is_empty() {
            continue;
        }
        let target = bb.center();
        let cur = placement.center(id);
        let (w, h) = placement.dims(design, id);
        if target.manhattan(cur) < 2.0 * h {
            continue; // already close
        }
        let w_sites = (w / site).ceil() * site;
        let region = design.node(id).region();
        let before = nets_hpwl(design, placement, &nets);
        let orig_ll = placement.lower_left(design, id);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, gap idx, x)
        for (gi, gap) in gaps.iter().enumerate() {
            if gap.region != region || gap.hi - gap.lo + 1e-9 < w_sites {
                continue;
            }
            let row_y = design.rows()[gap.row].y();
            if (row_y - target.y).abs() > 6.0 * h {
                continue; // too far vertically to be worth evaluating
            }
            // Best x inside the gap: clamp target, snap to site.
            let want = target.x - w / 2.0;
            let x = rdp_geom::clamp(want, gap.lo, gap.hi - w_sites);
            let x = gap.lo + ((x - gap.lo) / site).round() * site;
            let x = rdp_geom::clamp(x, gap.lo, gap.hi - w_sites);
            placement.set_lower_left(design, id, Point::new(x, row_y));
            let after = nets_hpwl(design, placement, &nets);
            placement.set_lower_left(design, id, orig_ll);
            let price = congestion_weight
                * (congestion_at(congestion, Point::new(x + w / 2.0, row_y + h / 2.0))
                    - congestion_at(congestion, cur))
                .max(0.0);
            let gain = before - after - price;
            if gain > 1e-9 && best.map(|(g, _, _)| gain > g).unwrap_or(true) {
                best = Some((gain, gi, x));
            }
        }
        if let Some((_, gi, x)) = best {
            let row_y = design.rows()[gaps[gi].row].y();
            placement.set_lower_left(design, id, Point::new(x, row_y));
            // Shrink the used gap (split into remnants).
            let (lo, hi) = (gaps[gi].lo, gaps[gi].hi);
            let (row, reg) = (gaps[gi].row, gaps[gi].region);
            gaps[gi].hi = x; // left remnant (may become empty)
            if x + w_sites < hi - 1e-9 {
                gaps.push(Gap { row, region: reg, lo: x + w_sites, hi });
            }
            let _ = lo;
            moves += 1;
        }
    }
    moves
}

/// One pass of independent-set matching: batches of mutually net-disjoint,
/// equal-footprint, same-region cells trade positions via an exactly-solved
/// assignment (their HPWL contributions are separable precisely because
/// they share no nets). Returns the number of batches whose assignment
/// changed.
pub fn ism_pass(
    design: &Design,
    placement: &mut Placement,
    congestion: Option<&RouteGrid>,
    congestion_weight: f64,
    batch: usize,
) -> usize {
    let batch = batch.clamp(2, 6);
    // Group by footprint and region so any slot permutation stays legal.
    let mut groups: std::collections::HashMap<(u64, u64, Option<rdp_db::RegionId>), Vec<NodeId>> =
        std::collections::HashMap::new();
    for id in design.node_ids() {
        if !design.node(id).is_std_cell() {
            continue;
        }
        let (w, h) = placement.dims(design, id);
        groups
            .entry(((w * 1024.0) as u64, (h * 1024.0) as u64, design.node(id).region()))
            .or_default()
            .push(id);
    }
    let mut groups: Vec<_> = groups.into_values().collect();
    groups.sort_by_key(|g| g.first().copied());

    let mut improved = 0;
    for group in groups {
        // Build net-disjoint batches greedily in id order.
        let mut used_nets: Vec<NetId> = Vec::new();
        let mut current: Vec<NodeId> = Vec::new();
        let mut batches: Vec<Vec<NodeId>> = Vec::new();
        for id in group {
            let nets = incident_nets(design, &[id]);
            if nets.iter().any(|n| used_nets.contains(n)) {
                continue;
            }
            used_nets.extend(nets);
            current.push(id);
            if current.len() == batch {
                batches.push(std::mem::take(&mut current));
                used_nets.clear();
            }
        }
        for cells in batches {
            let k = cells.len();
            let slots: Vec<Point> = cells.iter().map(|&id| placement.center(id)).collect();
            // Exact per-(cell, slot) costs: separable since nets are
            // disjoint across the batch.
            let mut cost = vec![vec![0.0f64; k]; k];
            for (i, &id) in cells.iter().enumerate() {
                let nets = incident_nets(design, &[id]);
                let original = placement.center(id);
                for (j, &slot) in slots.iter().enumerate() {
                    placement.set_center(id, slot);
                    let wl = nets_hpwl(design, placement, &nets);
                    let price = congestion_weight
                        * (congestion_at(congestion, slot) - congestion_at(congestion, original))
                            .max(0.0);
                    cost[i][j] = wl + price;
                }
                placement.set_center(id, original);
            }
            // Exact assignment by permutation search (k ≤ 6).
            let mut perm: Vec<usize> = (0..k).collect();
            let mut best: Vec<usize> = perm.clone();
            let identity_cost: f64 = (0..k).map(|i| cost[i][i]).sum();
            let mut best_cost = identity_cost;
            #[allow(clippy::too_many_arguments)]
            fn search(
                i: usize,
                k: usize,
                taken: &mut Vec<bool>,
                perm: &mut Vec<usize>,
                cost: &[Vec<f64>],
                acc: f64,
                best_cost: &mut f64,
                best: &mut Vec<usize>,
            ) {
                if acc >= *best_cost {
                    return; // branch and bound
                }
                if i == k {
                    *best_cost = acc;
                    best.clone_from(perm);
                    return;
                }
                for j in 0..k {
                    if !taken[j] {
                        taken[j] = true;
                        perm[i] = j;
                        search(i + 1, k, taken, perm, cost, acc + cost[i][j], best_cost, best);
                        taken[j] = false;
                    }
                }
            }
            let mut taken = vec![false; k];
            search(0, k, &mut taken, &mut perm, &cost, 0.0, &mut best_cost, &mut best);
            if best_cost + 1e-9 < identity_cost {
                for (i, &id) in cells.iter().enumerate() {
                    placement.set_center(id, slots[best[i]]);
                }
                improved += 1;
            }
        }
    }
    improved
}

/// Runs the full detailed-placement schedule.
pub fn detailed_place(
    design: &Design,
    placement: &mut Placement,
    congestion: Option<&RouteGrid>,
    opts: DetailOptions,
) -> DetailStats {
    let mut stats = DetailStats {
        hpwl_before: rdp_db::hpwl::total_hpwl(design, placement),
        ..DetailStats::default()
    };
    for _ in 0..opts.passes {
        stats.swaps += global_swap_pass(design, placement, congestion, opts.congestion_weight);
        stats.reorders += reorder_pass(design, placement, 3);
        stats.flips += flip_std_cells(design, placement);
        if opts.ism {
            stats.swaps +=
                ism_pass(design, placement, congestion, opts.congestion_weight, opts.ism_batch);
        }
        if opts.relocate {
            stats.swaps += relocate_pass(design, placement, congestion, opts.congestion_weight);
        }
    }
    stats.hpwl_after = rdp_db::hpwl::total_hpwl(design, placement);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalize::legalize;
    use rdp_db::validate::check_legal;
    use rdp_gen::{generate, GeneratorConfig};

    fn legal_bench(seed: u64) -> (rdp_db::Design, Placement) {
        let bench = generate(&GeneratorConfig::tiny("dp", seed)).unwrap();
        let mut pl = bench.placement.clone();
        let mut rng = rdp_geom::rng::Rng::seed_from_u64(seed);
        let die = bench.design.die();
        for id in bench.design.movable_ids() {
            let (w, h) = pl.dims(&bench.design, id);
            pl.set_center(
                id,
                Point::new(
                    rng.gen_range(die.xl + w / 2.0..die.xh - w / 2.0),
                    rng.gen_range(die.yl + h / 2.0..die.yh - h / 2.0),
                ),
            );
        }
        legalize(&bench.design, &mut pl);
        (bench.design, pl)
    }

    #[test]
    fn detailed_placement_reduces_hpwl_and_keeps_legality() {
        let (design, mut pl) = legal_bench(31);
        let stats = detailed_place(&design, &mut pl, None, DetailOptions::default());
        assert!(
            stats.hpwl_after <= stats.hpwl_before,
            "HPWL got worse: {} -> {}",
            stats.hpwl_before,
            stats.hpwl_after
        );
        assert!(
            stats.swaps + stats.reorders + stats.flips > 0,
            "nothing improved on a random-legalized placement?"
        );
        let report = check_legal(&design, &pl, 20);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
    }

    #[test]
    fn reorder_pass_improves_or_keeps() {
        let (design, mut pl) = legal_bench(32);
        let before = rdp_db::hpwl::total_hpwl(&design, &pl);
        reorder_pass(&design, &mut pl, 3);
        let after = rdp_db::hpwl::total_hpwl(&design, &pl);
        assert!(after <= before + 1e-6);
        let report = check_legal(&design, &pl, 20);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
    }

    #[test]
    fn relocate_pass_improves_and_keeps_legality() {
        let (design, mut pl) = legal_bench(37);
        let before = rdp_db::hpwl::total_hpwl(&design, &pl);
        let moves = relocate_pass(&design, &mut pl, None, 0.0);
        let after = rdp_db::hpwl::total_hpwl(&design, &pl);
        assert!(after <= before + 1e-6, "relocation made HPWL worse: {before} -> {after}");
        assert!(moves > 0, "random-legalized placement should have relocation gains");
        let report = check_legal(&design, &pl, 20);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
    }

    #[test]
    fn relocate_respects_fences() {
        use rdp_gen::GeneratorConfig;
        let bench = generate(&GeneratorConfig::hierarchical("dpr", 38, 2)).unwrap();
        let mut pl = bench.placement.clone();
        crate::legalize::legalize(&bench.design, &mut pl);
        relocate_pass(&bench.design, &mut pl, None, 0.0);
        let report = check_legal(&bench.design, &pl, 30);
        assert_eq!(
            report.fence_violations, 0,
            "relocation crossed a fence: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
        assert!(report.is_legal(), "violations: {:?}", &report.violations[..report.violations.len().min(5)]);
    }

    #[test]
    fn ism_pass_improves_and_keeps_legality() {
        let (design, mut pl) = legal_bench(34);
        let before = rdp_db::hpwl::total_hpwl(&design, &pl);
        let improved = ism_pass(&design, &mut pl, None, 0.0, 4);
        let after = rdp_db::hpwl::total_hpwl(&design, &pl);
        assert!(after <= before + 1e-6, "ISM made HPWL worse: {before} -> {after}");
        assert!(improved > 0, "random-legalized placement should have ISM gains");
        let report = check_legal(&design, &pl, 20);
        assert!(report.is_legal(), "violations: {:?}", report.violations);
    }

    #[test]
    fn ism_respects_fence_regions() {
        use rdp_gen::GeneratorConfig;
        let bench = generate(&GeneratorConfig::hierarchical("dpi", 35, 2)).unwrap();
        let mut pl = bench.placement.clone();
        crate::legalize::legalize(&bench.design, &mut pl);
        ism_pass(&bench.design, &mut pl, None, 0.0, 4);
        let report = check_legal(&bench.design, &pl, 30);
        assert_eq!(
            report.fence_violations, 0,
            "ISM crossed a fence: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
    }

    #[test]
    fn detailed_place_with_ism_enabled() {
        let (design, mut pl) = legal_bench(36);
        let stats = detailed_place(
            &design,
            &mut pl,
            None,
            DetailOptions { ism: true, passes: 1, ..DetailOptions::default() },
        );
        assert!(stats.hpwl_after <= stats.hpwl_before);
        assert!(check_legal(&design, &pl, 10).is_legal());
    }

    #[test]
    fn congestion_price_blocks_marginal_swaps() {
        let (design, pl) = legal_bench(33);
        // A perfectly uniform congestion field prices every move equally
        // (zero delta), so the priced run must equal the blind run. A
        // design-derived grid would have carved blockages and non-uniform
        // ratios, so build a uniform grid explicitly.
        let die = design.die();
        let mut grid = rdp_route::RouteGrid::uniform(
            8,
            8,
            rdp_geom::Point::new(die.xl, die.yl),
            die.width() / 8.0,
            die.height() / 8.0,
            10.0,
            10.0,
        );
        for e in grid.edge_ids().collect::<Vec<_>>() {
            grid.add_usage(e, 1e3);
        }
        let mut pl_a = pl.clone();
        let swaps_uniform = global_swap_pass(&design, &mut pl_a, Some(&grid), 1e9);
        let mut pl_b = pl.clone();
        let swaps_blind = global_swap_pass(&design, &mut pl_b, None, 0.0);
        assert_eq!(swaps_uniform, swaps_blind, "uniform congestion must price nothing");
    }
}
