//! The analytical global-placement engine: conjugate-gradient descent on
//! `smooth wirelength + λ · density penalty (+ fence pull-in)`, with the
//! NTUplace-style λ-doubling outer loop and γ annealing.
//!
//! All optimizer state (gradients, CG direction, checkpoints) lives in
//! structure-of-arrays `f64` buffers matching the model's `pos_x`/`pos_y`
//! layout, so every inner-loop pass streams contiguous memory. The scalar
//! recurrences below unroll the historical `Point` arithmetic
//! component-wise in the same order, keeping results bitwise identical to
//! the array-of-structs implementation.

use crate::density::build_fields;
use crate::fence::{fence_grad, fence_project};
use crate::model::Model;
use crate::recovery::{Diverged, RecoveryEvent, RecoveryPolicy};
use crate::trace::{Trace, TraceRecord};
use crate::wirelength::{all_finite, smooth_wl_grad_par, WirelengthModel, WlScratch};
use rdp_db::Region;
use rdp_geom::parallel::Parallelism;
use rdp_geom::Rect;
use std::time::{Duration, Instant};

/// Tuning parameters of one global-placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpOptions {
    /// Smooth wirelength model.
    pub wirelength: WirelengthModel,
    /// Bin count per axis of the main density field.
    pub bins: usize,
    /// Target density (movable area per bin / free bin capacity).
    pub target_density: f64,
    /// Maximum penalty (λ-doubling) rounds.
    pub max_outer: usize,
    /// CG iterations per round.
    pub inner_iters: usize,
    /// Stop when overflow area / movable area falls below this.
    pub overflow_target: f64,
    /// Initial γ as a multiple of the bin width.
    pub gamma_mult: f64,
    /// Per-round multiplicative γ decay.
    pub gamma_decay: f64,
    /// Per-round λ growth factor.
    pub lambda_growth: f64,
    /// Weight of the fence pull-in force relative to the density gradient.
    pub fence_weight: f64,
    /// Maximum move per CG step, in bins.
    pub step_bins: f64,
    /// Worker threads for the wirelength/density kernels (results are
    /// identical at every thread count; see [`rdp_geom::parallel`]).
    pub parallelism: Parallelism,
    /// Divergence recovery policy (step shrinking and retry bound).
    pub recovery: RecoveryPolicy,
}

impl Default for GpOptions {
    fn default() -> Self {
        GpOptions {
            wirelength: WirelengthModel::Wa,
            bins: 0, // 0 = auto from object count
            target_density: 0.9,
            max_outer: 32,
            inner_iters: 40,
            overflow_target: 0.08,
            gamma_mult: 4.0,
            gamma_decay: 0.92,
            lambda_growth: 2.0,
            fence_weight: 4.0,
            step_bins: 0.8,
            parallelism: Parallelism::auto(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl GpOptions {
    /// Effective bin count for a model with `n` objects: `bins` if nonzero,
    /// else `clamp(√n, 16, 256)`.
    pub fn effective_bins(&self, n: usize) -> usize {
        if self.bins > 0 {
            self.bins
        } else {
            ((n as f64).sqrt().ceil() as usize).clamp(16, 256)
        }
    }
}

/// Outcome summary of a global-placement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpOutcome {
    /// Final overflow ratio.
    pub overflow_ratio: f64,
    /// Outer rounds executed.
    pub outer_rounds: usize,
    /// Final smoothed wirelength.
    pub smooth_wl: f64,
    /// Divergence recoveries (restore + step-shrink retries) performed.
    pub recoveries: usize,
}

/// Runs analytical global placement on `model` in place.
///
/// `regions` are the design's fence regions (fenced objects are pulled into
/// and density-constrained to their fence); `blocked` lists immovable
/// (rect, occupancy) area for the density fields; `stage` labels trace
/// records.
///
/// # Divergence recovery
///
/// A non-finite smooth wirelength or gradient is a recoverable signal, not
/// a panic: the optimizer restores the last finite iterate, shrinks the
/// trust-region step by [`RecoveryPolicy::step_shrink`] and restarts CG.
/// Restoring finite coordinates is what re-anchors the WA stability shift
/// — the per-net max/min exponent anchor is re-derived from the current
/// positions on every evaluation, so a restored iterate evaluates with a
/// fresh, well-scaled anchor. After [`RecoveryPolicy::max_retries`] failed
/// retries the run surfaces [`Diverged`], leaving `model` at its last
/// finite iterate so callers can continue the flow from it.
///
/// The fault-free path is bitwise identical to a recovery-free optimizer:
/// the step scale stays exactly `1.0` until the first recovery, and all
/// recovery decisions happen on this (the orchestrating) thread.
pub fn run_global_place(
    model: &mut Model,
    regions: &[Region],
    blocked: &[(Rect, f64)],
    opts: &GpOptions,
    trace: &mut Trace,
    stage: &str,
) -> Result<GpOutcome, Diverged> {
    if model.is_empty() {
        return Ok(GpOutcome { overflow_ratio: 0.0, outer_rounds: 0, smooth_wl: 0.0, recoveries: 0 });
    }
    let n = model.len();
    let bins = opts.effective_bins(n);
    let mut fields = build_fields(model, regions, blocked, bins, opts.target_density);
    let bin_w = fields[0].grid.bin_w();
    let bin_h = fields[0].grid.bin_h();
    let movable_area: f64 = model.area.iter().sum();

    let mut gamma = opts.gamma_mult * 0.5 * (bin_w + bin_h);
    let gamma_floor = 0.25 * 0.5 * (bin_w + bin_h);

    let mut wl_gx = vec![0.0; n];
    let mut wl_gy = vec![0.0; n];
    let mut den_gx = vec![0.0; n];
    let mut den_gy = vec![0.0; n];
    let mut gx = vec![0.0; n];
    let mut gy = vec![0.0; n];
    let mut prev_gx = vec![0.0; n];
    let mut prev_gy = vec![0.0; n];
    let mut dir_x = vec![0.0; n];
    let mut dir_y = vec![0.0; n];
    // Wirelength evaluation scratch (net spans, pin-level gradients),
    // allocated once and reused by every CG iteration.
    let mut wl_scratch = WlScratch::new();

    let par = opts.parallelism;
    let mut wl_kernel_time = Duration::ZERO;
    let mut den_kernel_time = Duration::ZERO;

    // λ₀ balances the two gradient magnitudes (the SimPL/NTUplace warm
    // start): density starts at ~5% of the wirelength force.
    let mut lambda = {
        smooth_wl_grad_par(model, opts.wirelength, gamma, &mut wl_gx, &mut wl_gy, &mut wl_scratch, par);
        for f in &mut fields {
            f.penalty_grad_par(model, &mut den_gx, &mut den_gy, par);
        }
        let mut wl_norm = 0.0;
        let mut den_norm = 0.0;
        for i in 0..n {
            wl_norm += wl_gx[i].hypot(wl_gy[i]);
            den_norm += den_gx[i].hypot(den_gy[i]);
        }
        if den_norm > 1e-12 {
            0.05 * wl_norm / den_norm
        } else {
            1e-3
        }
    };

    let mut outcome =
        GpOutcome { overflow_ratio: f64::INFINITY, outer_rounds: 0, smooth_wl: 0.0, recoveries: 0 };
    let step_len = opts.step_bins * 0.5 * (bin_w + bin_h);

    // Divergence recovery state: the last finite iterate, the current
    // trust-region scale (exactly 1.0 until the first recovery, keeping
    // the fault-free path bitwise identical), and the retry budget.
    let mut last_good_x = model.pos_x.clone();
    let mut last_good_y = model.pos_y.clone();
    let mut step_scale = 1.0;
    let mut retries = 0usize;

    for outer in 0..opts.max_outer {
        let mut last_wl = 0.0;
        dir_x.iter_mut().for_each(|d| *d = 0.0);
        dir_y.iter_mut().for_each(|d| *d = 0.0);
        prev_gx.iter_mut().for_each(|g| *g = 0.0);
        prev_gy.iter_mut().for_each(|g| *g = 0.0);
        let mut overflow_area = 0.0;

        for inner in 0..opts.inner_iters {
            wl_gx.iter_mut().for_each(|g| *g = 0.0);
            wl_gy.iter_mut().for_each(|g| *g = 0.0);
            den_gx.iter_mut().for_each(|g| *g = 0.0);
            den_gy.iter_mut().for_each(|g| *g = 0.0);
            let t0 = Instant::now();
            last_wl = smooth_wl_grad_par(
                model,
                opts.wirelength,
                gamma,
                &mut wl_gx,
                &mut wl_gy,
                &mut wl_scratch,
                par,
            );
            wl_kernel_time += t0.elapsed();
            overflow_area = 0.0;
            let t1 = Instant::now();
            for f in &mut fields {
                let stats = f.penalty_grad_par(model, &mut den_gx, &mut den_gy, par);
                overflow_area += stats.overflow_area;
            }
            den_kernel_time += t1.elapsed();
            fence_grad(model, regions, lambda * opts.fence_weight, &mut den_gx, &mut den_gy);

            for i in 0..n {
                gx[i] = wl_gx[i] + den_gx[i] * lambda;
                gy[i] = wl_gy[i] + den_gy[i] * lambda;
            }

            if crate::faultinject::fire_nan_gradient(stage, outer) {
                last_wl = f64::NAN;
                gx[0] = f64::NAN;
                gy[0] = f64::NAN;
            }

            // Divergence check: a non-finite objective or gradient (NaN λ
            // included — it poisons the combined gradient above) triggers
            // restore-and-retry instead of propagating downstream.
            if !all_finite(last_wl, &gx, &gy) {
                model.pos_x.copy_from_slice(&last_good_x);
                model.pos_y.copy_from_slice(&last_good_y);
                if retries >= opts.recovery.max_retries {
                    trace.record_event(RecoveryEvent::GpDiverged {
                        stage: stage.to_owned(),
                        retries,
                    });
                    trace.record_stage(format!("{stage}/wl_kernel"), wl_kernel_time);
                    trace.record_stage(format!("{stage}/density_kernel"), den_kernel_time);
                    outcome.recoveries = retries;
                    return Err(Diverged { stage: stage.to_owned(), outer, retries, best: outcome });
                }
                retries += 1;
                step_scale *= opts.recovery.step_shrink;
                trace.record_event(RecoveryEvent::StepHalved {
                    stage: stage.to_owned(),
                    outer,
                    scale: step_scale,
                });
                // Restart CG from the restored iterate and invalidate the
                // poisoned round-local state.
                dir_x.iter_mut().for_each(|d| *d = 0.0);
                dir_y.iter_mut().for_each(|d| *d = 0.0);
                prev_gx.iter_mut().for_each(|g| *g = 0.0);
                prev_gy.iter_mut().for_each(|g| *g = 0.0);
                last_wl = outcome.smooth_wl;
                overflow_area = f64::INFINITY;
                continue;
            }

            // Polak–Ribière β with restart on non-descent.
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..n {
                num += gx[i] * (gx[i] - prev_gx[i]) + gy[i] * (gy[i] - prev_gy[i]);
                den += prev_gx[i] * prev_gx[i] + prev_gy[i] * prev_gy[i];
            }
            let beta = if inner == 0 || den <= 1e-24 { 0.0 } else { (num / den).max(0.0) };
            let mut max_d: f64 = 0.0;
            let mut descent = 0.0;
            for i in 0..n {
                dir_x[i] = -gx[i] + dir_x[i] * beta;
                dir_y[i] = -gy[i] + dir_y[i] * beta;
                max_d = max_d.max(dir_x[i].abs().max(dir_y[i].abs()));
                descent += dir_x[i] * gx[i] + dir_y[i] * gy[i];
            }
            if descent >= 0.0 {
                // Restart with steepest descent.
                max_d = 0.0;
                for i in 0..n {
                    dir_x[i] = -gx[i];
                    dir_y[i] = -gy[i];
                    max_d = max_d.max(dir_x[i].abs().max(dir_y[i].abs()));
                }
            }
            if max_d <= 1e-18 {
                break;
            }
            // `step_scale` is 1.0 unless a recovery shrank the trust
            // region, so the fault-free α is bitwise `step_len / max_d`.
            let alpha = (step_len / max_d) * step_scale;
            last_good_x.copy_from_slice(&model.pos_x);
            last_good_y.copy_from_slice(&model.pos_y);
            for i in 0..n {
                model.pos_x[i] += dir_x[i] * alpha;
                model.pos_y[i] += dir_y[i] * alpha;
            }
            model.clamp_to_die();
            std::mem::swap(&mut prev_gx, &mut gx);
            std::mem::swap(&mut prev_gy, &mut gy);
        }

        // Collapse the boundary layer: objects the pull force brought to
        // within a bin of their fence are snapped inside (projected
        // gradient step for the hard fence constraint).
        fence_project(model, regions, 0.5 * (bin_w + bin_h));

        let overflow_ratio = overflow_area / movable_area.max(1e-12);
        outcome = GpOutcome {
            overflow_ratio,
            outer_rounds: outer + 1,
            smooth_wl: last_wl,
            recoveries: retries,
        };
        trace.record(TraceRecord {
            stage: stage.to_owned(),
            outer,
            smooth_wl: last_wl,
            hpwl: model.hpwl(),
            overflow: overflow_ratio,
            lambda,
            gamma,
        });
        if overflow_ratio < opts.overflow_target {
            break;
        }
        lambda *= opts.lambda_growth;
        gamma = (gamma * opts.gamma_decay).max(gamma_floor);
    }
    trace.record_stage(format!("{stage}/wl_kernel"), wl_kernel_time);
    trace.record_stage(format!("{stage}/density_kernel"), den_kernel_time);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin};
    use rdp_geom::Point;

    /// A chain of cells anchored at both ends, all starting at the center.
    fn chain_model(n: usize) -> Model {
        let die = Rect::new(0.0, 0.0, 200.0, 200.0);
        let mut nets = Vec::new();
        nets.push(ModelNet {
            weight: 1.0,
            pins: vec![ModelPin::fixed(Point::new(0.0, 100.0)), ModelPin::movable(0, Point::ORIGIN)],
        });
        for i in 0..n - 1 {
            nets.push(ModelNet {
                weight: 1.0,
                pins: vec![ModelPin::movable(i, Point::ORIGIN), ModelPin::movable(i + 1, Point::ORIGIN)],
            });
        }
        nets.push(ModelNet {
            weight: 1.0,
            pins: vec![
                ModelPin::movable(n - 1, Point::ORIGIN),
                ModelPin::fixed(Point::new(200.0, 100.0)),
            ],
        });
        Model::from_parts(
            (0..n).map(|i| Point::new(100.0 + (i as f64) * 1e-3, 100.0)).collect(),
            vec![(8.0, 10.0); n],
            vec![80.0; n],
            vec![false; n],
            vec![None; n],
            &nets,
            die,
            vec![],
        )
    }

    #[test]
    fn spreads_overlapping_cells() {
        let mut model = chain_model(40);
        let mut trace = Trace::new();
        let opts = GpOptions { max_outer: 20, inner_iters: 30, ..GpOptions::default() };
        let out = run_global_place(&mut model, &[], &[], &opts, &mut trace, "test").unwrap();
        assert!(
            out.overflow_ratio < 0.25,
            "cells did not spread: overflow {}",
            out.overflow_ratio
        );
        // Cells must have moved off the center pile.
        let spread = model.pos_x.iter().map(|x| (x - 100.0).abs()).fold(0.0f64, f64::max);
        assert!(spread > 10.0, "max spread {spread}");
        assert!(!trace.records.is_empty());
    }

    #[test]
    fn wirelength_pull_keeps_chain_ordered_roughly() {
        let mut model = chain_model(20);
        let mut trace = Trace::new();
        let out =
            run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t").unwrap();
        assert!(out.smooth_wl.is_finite());
        // The two anchors at x=0 and x=200 stretch the chain: the first
        // cell should end left of the last one.
        assert!(
            model.pos_x[0] < model.pos_x[19],
            "chain inverted: {} vs {}",
            model.pos_x[0],
            model.pos_x[19]
        );
    }

    #[test]
    fn all_positions_stay_in_die() {
        let mut model = chain_model(30);
        let mut trace = Trace::new();
        run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t").unwrap();
        for i in 0..model.len() {
            let p = model.pos(i);
            let (w, h) = model.size[i];
            assert!(p.x >= w / 2.0 - 1e-6 && p.x <= 200.0 - w / 2.0 + 1e-6, "obj {i} x {}", p.x);
            assert!(p.y >= h / 2.0 - 1e-6 && p.y <= 200.0 - h / 2.0 + 1e-6, "obj {i} y {}", p.y);
        }
    }

    #[test]
    fn empty_model_is_a_noop() {
        let mut model = Model::from_parts(
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            &[],
            Rect::new(0.0, 0.0, 200.0, 200.0),
            vec![],
        );
        let mut trace = Trace::new();
        let out =
            run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t").unwrap();
        assert_eq!(out.outer_rounds, 0);
    }

    #[test]
    fn blocked_area_is_avoided() {
        let mut model = chain_model(30);
        let blocked = vec![(Rect::new(80.0, 80.0, 120.0, 120.0), 1.0)];
        let mut trace = Trace::new();
        let opts = GpOptions { max_outer: 24, ..GpOptions::default() };
        run_global_place(&mut model, &[], &blocked, &opts, &mut trace, "t").unwrap();
        // Density mass inside the blocked rect should be small: count
        // centers inside.
        let inside = (0..model.len())
            .map(|i| model.pos(i))
            .filter(|p| p.x > 85.0 && p.x < 115.0 && p.y > 85.0 && p.y < 115.0)
            .count();
        assert!(
            inside <= 6,
            "{inside} of 30 cells remain in the blocked region"
        );
    }

    #[test]
    fn non_finite_start_surfaces_diverged_not_panic() {
        let mut model = chain_model(10);
        model.pos_x[3] = f64::NAN;
        let mut trace = Trace::new();
        let err = run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t")
            .unwrap_err();
        assert_eq!(err.stage, "t");
        assert_eq!(err.retries, GpOptions::default().recovery.max_retries);
        assert!(trace.events.iter().any(|e| e.kind() == "gp_diverged"));
    }
}
