//! The analytical global-placement engine: descent on
//! `smooth wirelength + λ · density penalty (+ fence pull-in)`, with the
//! NTUplace-style λ-doubling outer loop and γ annealing.
//!
//! Two engine combinations are selectable through [`GpOptions`]:
//!
//! * [`GpSolver::ConjugateGradient`] + [`GpDensityModel::Bell`] — the
//!   historical default (Polak–Ribière CG on the bell-shaped local
//!   density); its fault-free output is bitwise pinned by the golden-bit
//!   regression tests.
//! * [`GpSolver::Nesterov`] + [`GpDensityModel::Electrostatic`] — the
//!   ePlace-style path: FFT-solved Poisson field ([`crate::electrostatics`])
//!   optimized with Nesterov accelerated gradient under a per-cell
//!   Lipschitz preconditioner (pin count + λ-scaled cell area). The
//!   long-range field plus momentum converges in fewer gradient
//!   evaluations; `bench_scale` A/Bs the two.
//!
//! Solver and density model compose freely (CG + electrostatic, Nesterov +
//! bell are valid). All optimizer state lives in structure-of-arrays `f64`
//! buffers matching the model's `pos_x`/`pos_y` layout, so every
//! inner-loop pass streams contiguous memory. The scalar recurrences below
//! unroll the historical `Point` arithmetic component-wise in the same
//! order, keeping the default path bitwise identical to the
//! array-of-structs implementation.

use crate::density::{build_fields, DensityField, DensityStats};
use crate::electrostatics::{build_electro_fields, ElectroField};
use crate::fence::{fence_grad, fence_project};
use crate::fused::{fused_wl_den_grad, fused_wl_electro_grad};
use crate::model::Model;
use crate::recovery::{Diverged, RecoveryEvent, RecoveryPolicy};
use crate::trace::{Trace, TraceRecord};
use crate::wirelength::{all_finite, WirelengthModel, WlScratch};
use rdp_db::Region;
use rdp_geom::parallel::Parallelism;
use rdp_geom::Rect;
use std::time::{Duration, Instant};

/// Descent method of the global placer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpSolver {
    /// Polak–Ribière conjugate gradient with restart (the historical
    /// default).
    #[default]
    ConjugateGradient,
    /// Nesterov accelerated gradient with a per-cell Lipschitz
    /// preconditioner (pin count + λ-scaled area).
    Nesterov,
}

impl GpSolver {
    /// Short label for traces, benches and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            GpSolver::ConjugateGradient => "cg",
            GpSolver::Nesterov => "nesterov",
        }
    }
}

/// Density model of the global placer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpDensityModel {
    /// NTUplace bell-shaped local smoothing (the historical default).
    #[default]
    Bell,
    /// ePlace electrostatic field solved spectrally (FFT Poisson). The
    /// density grid is rounded up to power-of-two dimensions for the
    /// fixed-radix FFT.
    Electrostatic,
}

impl GpDensityModel {
    /// Short label for traces, benches and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            GpDensityModel::Bell => "bell",
            GpDensityModel::Electrostatic => "electro",
        }
    }
}

/// The density gradient backend selected by [`GpOptions::density_model`]:
/// both variants expose the same accumulate-into-gradient call and the
/// same [`DensityStats`] diagnostics.
enum DensityEngine {
    Bell(Vec<DensityField>),
    Electro(Vec<ElectroField>),
}

impl DensityEngine {
    fn build(
        model: &Model,
        regions: &[Region],
        blocked: &[(Rect, f64)],
        bins: usize,
        target_density: f64,
        which: GpDensityModel,
    ) -> Self {
        match which {
            GpDensityModel::Bell => {
                DensityEngine::Bell(build_fields(model, regions, blocked, bins, target_density))
            }
            GpDensityModel::Electrostatic => DensityEngine::Electro(build_electro_fields(
                model,
                regions,
                blocked,
                bins,
                target_density,
            )),
        }
    }

    /// Main-field bin dimensions (γ scaling and trust-region step).
    fn bin_dims(&self) -> (f64, f64) {
        match self {
            DensityEngine::Bell(f) => (f[0].grid.bin_w(), f[0].grid.bin_h()),
            DensityEngine::Electro(f) => (f[0].grid.bin_w(), f[0].grid.bin_h()),
        }
    }

    /// One fused gradient evaluation: the smooth-wirelength kernel and
    /// every density field share parallel regions (see [`crate::fused`]),
    /// so each optimizer iteration pays one dispatch sequence instead of
    /// one per kernel. Accumulates the wirelength gradient into
    /// `wl_gx`/`wl_gy` and the density gradient into `den_gx`/`den_gy`
    /// (callers zero), returning `(smooth_wl, stats)` — bitwise identical
    /// to [`crate::wirelength::smooth_wl_grad_par`] followed by every
    /// field's `penalty_grad_par` in ascending field order.
    #[allow(clippy::too_many_arguments)]
    fn eval_fused(
        &mut self,
        model: &Model,
        which: WirelengthModel,
        gamma: f64,
        wl_scratch: &mut WlScratch,
        wl_gx: &mut [f64],
        wl_gy: &mut [f64],
        den_gx: &mut [f64],
        den_gy: &mut [f64],
        par: &Parallelism,
    ) -> (f64, DensityStats) {
        match self {
            DensityEngine::Bell(fields) => fused_wl_den_grad(
                model, which, gamma, fields, wl_scratch, wl_gx, wl_gy, den_gx, den_gy, par,
            ),
            DensityEngine::Electro(fields) => fused_wl_electro_grad(
                model, which, gamma, fields, wl_scratch, wl_gx, wl_gy, den_gx, den_gy, par,
            ),
        }
    }
}

/// Tuning parameters of one global-placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpOptions {
    /// Smooth wirelength model.
    pub wirelength: WirelengthModel,
    /// Bin count per axis of the main density field.
    pub bins: usize,
    /// Target density (movable area per bin / free bin capacity).
    pub target_density: f64,
    /// Maximum penalty (λ-doubling) rounds.
    pub max_outer: usize,
    /// CG iterations per round.
    pub inner_iters: usize,
    /// Stop when overflow area / movable area falls below this.
    pub overflow_target: f64,
    /// Initial γ as a multiple of the bin width.
    pub gamma_mult: f64,
    /// Per-round multiplicative γ decay.
    pub gamma_decay: f64,
    /// Per-round λ growth factor.
    pub lambda_growth: f64,
    /// Weight of the fence pull-in force relative to the density gradient.
    pub fence_weight: f64,
    /// Maximum move per CG step, in bins.
    pub step_bins: f64,
    /// Descent method (CG default; Nesterov for the ePlace-style path).
    pub solver: GpSolver,
    /// Density model (bell default; electrostatic for the FFT Poisson
    /// field — rounds the bin grid up to powers of two).
    pub density_model: GpDensityModel,
    /// Worker threads for the wirelength/density kernels (results are
    /// identical at every thread count; see [`rdp_geom::parallel`]).
    pub parallelism: Parallelism,
    /// Divergence recovery policy (step shrinking and retry bound).
    pub recovery: RecoveryPolicy,
}

impl Default for GpOptions {
    fn default() -> Self {
        GpOptions {
            wirelength: WirelengthModel::Wa,
            bins: 0, // 0 = auto from object count
            target_density: 0.9,
            max_outer: 32,
            inner_iters: 40,
            overflow_target: 0.08,
            gamma_mult: 4.0,
            gamma_decay: 0.92,
            lambda_growth: 2.0,
            fence_weight: 4.0,
            step_bins: 0.8,
            solver: GpSolver::default(),
            density_model: GpDensityModel::default(),
            parallelism: Parallelism::auto(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl GpOptions {
    /// Effective bin count for a model with `n` objects: `bins` if nonzero,
    /// else `clamp(√n, 16, 256)`; rounded up to the next power of two for
    /// the electrostatic model (fixed-radix FFT constraint).
    pub fn effective_bins(&self, n: usize) -> usize {
        let b = if self.bins > 0 {
            self.bins
        } else {
            ((n as f64).sqrt().ceil() as usize).clamp(16, 256)
        };
        match self.density_model {
            GpDensityModel::Bell => b,
            GpDensityModel::Electrostatic => b.max(1).next_power_of_two(),
        }
    }
}

/// Outcome summary of a global-placement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpOutcome {
    /// Final overflow ratio.
    pub overflow_ratio: f64,
    /// Outer rounds executed.
    pub outer_rounds: usize,
    /// Final smoothed wirelength.
    pub smooth_wl: f64,
    /// Divergence recoveries (restore + step-shrink retries) performed.
    pub recoveries: usize,
    /// Gradient evaluations performed (wirelength + density kernel calls,
    /// including the λ₀ warm-start evaluation) — the iterations-to-converge
    /// measure the solver A/B compares.
    pub gradient_evals: usize,
}

/// Runs analytical global placement on `model` in place.
///
/// `regions` are the design's fence regions (fenced objects are pulled into
/// and density-constrained to their fence); `blocked` lists immovable
/// (rect, occupancy) area for the density fields; `stage` labels trace
/// records.
///
/// # Divergence recovery
///
/// A non-finite smooth wirelength or gradient is a recoverable signal, not
/// a panic: the optimizer restores the last finite iterate, shrinks the
/// trust-region step by [`RecoveryPolicy::step_shrink`] and restarts CG.
/// Restoring finite coordinates is what re-anchors the WA stability shift
/// — the per-net max/min exponent anchor is re-derived from the current
/// positions on every evaluation, so a restored iterate evaluates with a
/// fresh, well-scaled anchor. After [`RecoveryPolicy::max_retries`] failed
/// retries the run surfaces [`Diverged`], leaving `model` at its last
/// finite iterate so callers can continue the flow from it.
///
/// The fault-free path is bitwise identical to a recovery-free optimizer:
/// the step scale stays exactly `1.0` until the first recovery, and all
/// recovery decisions happen on this (the orchestrating) thread.
pub fn run_global_place(
    model: &mut Model,
    regions: &[Region],
    blocked: &[(Rect, f64)],
    opts: &GpOptions,
    trace: &mut Trace,
    stage: &str,
) -> Result<GpOutcome, Diverged> {
    if model.is_empty() {
        return Ok(GpOutcome {
            overflow_ratio: 0.0,
            outer_rounds: 0,
            smooth_wl: 0.0,
            recoveries: 0,
            gradient_evals: 0,
        });
    }
    let n = model.len();
    let bins = opts.effective_bins(n);
    let mut engine =
        DensityEngine::build(model, regions, blocked, bins, opts.target_density, opts.density_model);
    let (bin_w, bin_h) = engine.bin_dims();
    let movable_area: f64 = model.area.iter().sum();

    let mut gamma = opts.gamma_mult * 0.5 * (bin_w + bin_h);
    let gamma_floor = 0.25 * 0.5 * (bin_w + bin_h);

    let mut wl_gx = vec![0.0; n];
    let mut wl_gy = vec![0.0; n];
    let mut den_gx = vec![0.0; n];
    let mut den_gy = vec![0.0; n];
    let mut gx = vec![0.0; n];
    let mut gy = vec![0.0; n];
    let mut prev_gx = vec![0.0; n];
    let mut prev_gy = vec![0.0; n];
    let mut dir_x = vec![0.0; n];
    let mut dir_y = vec![0.0; n];
    // Wirelength evaluation scratch (net spans, pin-level gradients),
    // allocated once and reused by every CG iteration.
    let mut wl_scratch = WlScratch::new();

    let par = &opts.parallelism;
    let mut grad_kernel_time = Duration::ZERO;
    let mut grad_evals = 0usize;

    // λ₀ balances the two gradient magnitudes (the SimPL/NTUplace warm
    // start): density starts at ~5% of the wirelength force.
    let mut lambda = {
        let t0 = Instant::now();
        engine.eval_fused(
            model,
            opts.wirelength,
            gamma,
            &mut wl_scratch,
            &mut wl_gx,
            &mut wl_gy,
            &mut den_gx,
            &mut den_gy,
            par,
        );
        grad_kernel_time += t0.elapsed();
        grad_evals += 1;
        let mut wl_norm = 0.0;
        let mut den_norm = 0.0;
        for i in 0..n {
            wl_norm += wl_gx[i].hypot(wl_gy[i]);
            den_norm += den_gx[i].hypot(den_gy[i]);
        }
        if den_norm > 1e-12 {
            0.05 * wl_norm / den_norm
        } else {
            1e-3
        }
    };

    let mut outcome = GpOutcome {
        overflow_ratio: f64::INFINITY,
        outer_rounds: 0,
        smooth_wl: 0.0,
        recoveries: 0,
        gradient_evals: grad_evals,
    };
    let step_len = opts.step_bins * 0.5 * (bin_w + bin_h);

    // Divergence recovery state: the last finite iterate, the current
    // trust-region scale (exactly 1.0 until the first recovery, keeping
    // the fault-free path bitwise identical), and the retry budget.
    let mut last_good_x = model.pos_x.clone();
    let mut last_good_y = model.pos_y.clone();
    let mut step_scale = 1.0;
    let mut retries = 0usize;

    // Nesterov state: the major iterate `u` (the model's `pos` holds the
    // lookahead `v` during gradient evaluation), the previous iterate for
    // the momentum extrapolation, the per-cell Lipschitz preconditioner
    // and the momentum sequence a_k. Allocated only when selected so the
    // default path's memory profile is unchanged.
    let nesterov = opts.solver == GpSolver::Nesterov;
    let mut u_x = if nesterov { model.pos_x.clone() } else { Vec::new() };
    let mut u_y = if nesterov { model.pos_y.clone() } else { Vec::new() };
    let mut prev_u_x = if nesterov { vec![0.0; n] } else { Vec::new() };
    let mut prev_u_y = if nesterov { vec![0.0; n] } else { Vec::new() };
    let mut precond = if nesterov { vec![1.0; n] } else { Vec::new() };
    let mut a_k = 1.0f64;
    let bin_area = bin_w * bin_h;

    // Per-round trace detail: the last inner step scale and density
    // penalty, so A/B runs are diffable from the stages CSV alone.
    let mut last_alpha = 0.0;
    let mut last_penalty = 0.0;

    for outer in 0..opts.max_outer {
        let mut last_wl = 0.0;
        dir_x.iter_mut().for_each(|d| *d = 0.0);
        dir_y.iter_mut().for_each(|d| *d = 0.0);
        prev_gx.iter_mut().for_each(|g| *g = 0.0);
        prev_gy.iter_mut().for_each(|g| *g = 0.0);
        let mut overflow_area = 0.0;

        if nesterov {
            // The per-cell Lipschitz estimate of ePlace: wirelength
            // curvature scales with the pin count, density curvature with
            // the λ-weighted charge (area in bin units). Recomputed each
            // round because λ grows; momentum restarts with it.
            for (i, p) in precond.iter_mut().enumerate() {
                let pins =
                    (model.obj_pin_start[i + 1] - model.obj_pin_start[i]) as f64;
                *p = (pins + lambda * model.area[i] / bin_area).max(1.0);
            }
            a_k = 1.0;
            u_x.copy_from_slice(&model.pos_x);
            u_y.copy_from_slice(&model.pos_y);
        }

        for inner in 0..opts.inner_iters {
            wl_gx.iter_mut().for_each(|g| *g = 0.0);
            wl_gy.iter_mut().for_each(|g| *g = 0.0);
            den_gx.iter_mut().for_each(|g| *g = 0.0);
            den_gy.iter_mut().for_each(|g| *g = 0.0);
            let t0 = Instant::now();
            let (wl, den_stats) = engine.eval_fused(
                model,
                opts.wirelength,
                gamma,
                &mut wl_scratch,
                &mut wl_gx,
                &mut wl_gy,
                &mut den_gx,
                &mut den_gy,
                par,
            );
            grad_kernel_time += t0.elapsed();
            last_wl = wl;
            overflow_area = den_stats.overflow_area;
            last_penalty = den_stats.penalty;
            grad_evals += 1;
            fence_grad(model, regions, lambda * opts.fence_weight, &mut den_gx, &mut den_gy);

            for i in 0..n {
                gx[i] = wl_gx[i] + den_gx[i] * lambda;
                gy[i] = wl_gy[i] + den_gy[i] * lambda;
            }

            if crate::faultinject::fire_nan_gradient(stage, outer) {
                last_wl = f64::NAN;
                gx[0] = f64::NAN;
                gy[0] = f64::NAN;
            }

            // Divergence check: a non-finite objective or gradient (NaN λ
            // included — it poisons the combined gradient above) triggers
            // restore-and-retry instead of propagating downstream.
            if !all_finite(last_wl, &gx, &gy) {
                model.pos_x.copy_from_slice(&last_good_x);
                model.pos_y.copy_from_slice(&last_good_y);
                if retries >= opts.recovery.max_retries {
                    trace.record_event(RecoveryEvent::GpDiverged {
                        stage: stage.to_owned(),
                        retries,
                    });
                    trace.record_stage(format!("{stage}/grad_kernel"), grad_kernel_time);
                    outcome.recoveries = retries;
                    outcome.gradient_evals = grad_evals;
                    return Err(Diverged { stage: stage.to_owned(), outer, retries, best: outcome });
                }
                retries += 1;
                step_scale *= opts.recovery.step_shrink;
                trace.record_event(RecoveryEvent::StepHalved {
                    stage: stage.to_owned(),
                    outer,
                    scale: step_scale,
                });
                // Restart the solver from the restored iterate and
                // invalidate the poisoned round-local state.
                dir_x.iter_mut().for_each(|d| *d = 0.0);
                dir_y.iter_mut().for_each(|d| *d = 0.0);
                prev_gx.iter_mut().for_each(|g| *g = 0.0);
                prev_gy.iter_mut().for_each(|g| *g = 0.0);
                if nesterov {
                    // The restored positions are the new major iterate;
                    // drop the momentum built on the poisoned trajectory.
                    u_x.copy_from_slice(&last_good_x);
                    u_y.copy_from_slice(&last_good_y);
                    a_k = 1.0;
                }
                last_wl = outcome.smooth_wl;
                overflow_area = f64::INFINITY;
                continue;
            }

            if nesterov {
                // Stop the round the moment the density target holds: the
                // accelerated field forces spread fast enough that running
                // the round to completion over-spreads well past the
                // target, trading wirelength for density headroom nobody
                // asked for. The 3% margin covers the gap between this
                // measurement (taken at the lookahead iterate) and the
                // major iterate the round actually returns. (The CG path
                // keeps its fixed inner count — its default output is
                // byte-stable across releases.)
                if overflow_area / movable_area.max(1e-12) < 0.97 * opts.overflow_target {
                    break;
                }
                // Preconditioned steepest direction at the lookahead.
                let mut max_d: f64 = 0.0;
                for i in 0..n {
                    dir_x[i] = gx[i] / precond[i];
                    dir_y[i] = gy[i] / precond[i];
                    max_d = max_d.max(dir_x[i].abs().max(dir_y[i].abs()));
                }
                if max_d <= 1e-18 {
                    break;
                }
                let alpha = (step_len / max_d) * step_scale;
                last_alpha = alpha;
                // The finite anchor for divergence recovery is the major
                // iterate, not the extrapolated lookahead.
                last_good_x.copy_from_slice(&u_x);
                last_good_y.copy_from_slice(&u_y);
                prev_u_x.copy_from_slice(&u_x);
                prev_u_y.copy_from_slice(&u_y);
                // u_{k+1} = v_k − α·P⁻¹g, clamped to the die.
                for i in 0..n {
                    model.pos_x[i] -= dir_x[i] * alpha;
                    model.pos_y[i] -= dir_y[i] * alpha;
                }
                model.clamp_to_die();
                u_x.copy_from_slice(&model.pos_x);
                u_y.copy_from_slice(&model.pos_y);
                // Adaptive restart (O'Donoghue–Candès): when the step just
                // taken points against the gradient, the momentum is
                // carrying the iterate uphill — drop it rather than ride
                // the overshoot ripple.
                let mut uphill = 0.0;
                for i in 0..n {
                    uphill += gx[i] * (u_x[i] - prev_u_x[i]) + gy[i] * (u_y[i] - prev_u_y[i]);
                }
                if uphill > 0.0 {
                    a_k = 1.0;
                }
                // v_{k+1} = u_{k+1} + (a_k−1)/a_{k+1} · (u_{k+1} − u_k).
                let a_next = 0.5 * (1.0 + (4.0 * a_k * a_k + 1.0).sqrt());
                let coef = (a_k - 1.0) / a_next;
                a_k = a_next;
                for i in 0..n {
                    model.pos_x[i] = u_x[i] + coef * (u_x[i] - prev_u_x[i]);
                    model.pos_y[i] = u_y[i] + coef * (u_y[i] - prev_u_y[i]);
                }
                model.clamp_to_die();
                continue;
            }

            // Polak–Ribière β with restart on non-descent.
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..n {
                num += gx[i] * (gx[i] - prev_gx[i]) + gy[i] * (gy[i] - prev_gy[i]);
                den += prev_gx[i] * prev_gx[i] + prev_gy[i] * prev_gy[i];
            }
            let beta = if inner == 0 || den <= 1e-24 { 0.0 } else { (num / den).max(0.0) };
            let mut max_d: f64 = 0.0;
            let mut descent = 0.0;
            for i in 0..n {
                dir_x[i] = -gx[i] + dir_x[i] * beta;
                dir_y[i] = -gy[i] + dir_y[i] * beta;
                max_d = max_d.max(dir_x[i].abs().max(dir_y[i].abs()));
                descent += dir_x[i] * gx[i] + dir_y[i] * gy[i];
            }
            if descent >= 0.0 {
                // Restart with steepest descent.
                max_d = 0.0;
                for i in 0..n {
                    dir_x[i] = -gx[i];
                    dir_y[i] = -gy[i];
                    max_d = max_d.max(dir_x[i].abs().max(dir_y[i].abs()));
                }
            }
            if max_d <= 1e-18 {
                break;
            }
            // `step_scale` is 1.0 unless a recovery shrank the trust
            // region, so the fault-free α is bitwise `step_len / max_d`.
            let alpha = (step_len / max_d) * step_scale;
            last_alpha = alpha;
            last_good_x.copy_from_slice(&model.pos_x);
            last_good_y.copy_from_slice(&model.pos_y);
            for i in 0..n {
                model.pos_x[i] += dir_x[i] * alpha;
                model.pos_y[i] += dir_y[i] * alpha;
            }
            model.clamp_to_die();
            std::mem::swap(&mut prev_gx, &mut gx);
            std::mem::swap(&mut prev_gy, &mut gy);
        }

        if nesterov {
            // The round ends on the major iterate, not the extrapolated
            // lookahead: fence projection, tracing and the next round's
            // warm start all read the converged positions.
            model.pos_x.copy_from_slice(&u_x);
            model.pos_y.copy_from_slice(&u_y);
        }

        // Collapse the boundary layer: objects the pull force brought to
        // within a bin of their fence are snapped inside (projected
        // gradient step for the hard fence constraint).
        fence_project(model, regions, 0.5 * (bin_w + bin_h));

        let overflow_ratio = overflow_area / movable_area.max(1e-12);
        outcome = GpOutcome {
            overflow_ratio,
            outer_rounds: outer + 1,
            smooth_wl: last_wl,
            recoveries: retries,
            gradient_evals: grad_evals,
        };
        trace.record(TraceRecord {
            stage: stage.to_owned(),
            outer,
            smooth_wl: last_wl,
            hpwl: model.hpwl(),
            overflow: overflow_ratio,
            lambda,
            gamma,
            solver: opts.solver.label().to_owned(),
            step_len: last_alpha,
            penalty: last_penalty,
            estimator_tier: String::new(),
        });
        if overflow_ratio < opts.overflow_target {
            break;
        }
        // The Nesterov path ramps λ more gently (growth^0.7, and √growth
        // once the overflow is within 2× of the target): the accelerated
        // field forces clear a full λ level in far fewer iterations than
        // CG, and riding the full ramp spends that advantage spreading
        // ahead of the wirelength — each λ level gets too little
        // untangling before the density weight doubles again. The gentler
        // ramp converts part of the iteration headroom into wirelength
        // quality while still converging in roughly half CG's evals.
        lambda *= if nesterov && overflow_ratio < 2.0 * opts.overflow_target {
            opts.lambda_growth.sqrt()
        } else if nesterov {
            opts.lambda_growth.powf(0.7)
        } else {
            opts.lambda_growth
        };
        if nesterov {
            // ePlace-style γ(τ): tie the wirelength smoothing to the
            // measured overflow instead of the round count. The
            // accelerated path converges in far fewer rounds than CG, and
            // a round-counted decay would leave the wirelength model
            // coarse in exactly the rounds that decide the final HPWL.
            let gamma0 = opts.gamma_mult * 0.5 * (bin_w + bin_h);
            let t = ((overflow_ratio - opts.overflow_target) / (1.0 - opts.overflow_target))
                .clamp(0.0, 1.0);
            gamma = gamma_floor * (gamma0 / gamma_floor).powf(t);
        } else {
            gamma = (gamma * opts.gamma_decay).max(gamma_floor);
        }
    }
    // Wirelength polish (Nesterov path only): the accelerated spreading
    // rounds overshoot the density target slightly, and that overshoot is
    // pure wirelength loss. With the target met, a few plain preconditioned
    // descent iterations at a damped λ pull wirelength back; every step is
    // validated against the target before the next one builds on it, and
    // the pass rewinds and stops the first time a step breaks the target.
    if nesterov && outcome.overflow_ratio < opts.overflow_target {
        lambda *= 0.25;
        u_x.copy_from_slice(&model.pos_x);
        u_y.copy_from_slice(&model.pos_y);
        prev_u_x.copy_from_slice(&u_x);
        prev_u_y.copy_from_slice(&u_y);
        let polish_iters = (opts.inner_iters / 4).max(1);
        let mut last_ratio = outcome.overflow_ratio;
        let mut threshold = opts.overflow_target;
        for it in 0..=polish_iters {
            wl_gx.iter_mut().for_each(|g| *g = 0.0);
            wl_gy.iter_mut().for_each(|g| *g = 0.0);
            den_gx.iter_mut().for_each(|g| *g = 0.0);
            den_gy.iter_mut().for_each(|g| *g = 0.0);
            let t0 = Instant::now();
            let (wl, den_stats) = engine.eval_fused(
                model,
                opts.wirelength,
                gamma,
                &mut wl_scratch,
                &mut wl_gx,
                &mut wl_gy,
                &mut den_gx,
                &mut den_gy,
                par,
            );
            grad_kernel_time += t0.elapsed();
            grad_evals += 1;
            fence_grad(model, regions, lambda * opts.fence_weight, &mut den_gx, &mut den_gy);
            for i in 0..n {
                gx[i] = wl_gx[i] + den_gx[i] * lambda;
                gy[i] = wl_gy[i] + den_gy[i] * lambda;
            }
            let ratio = den_stats.overflow_area / movable_area.max(1e-12);
            if it == 0 {
                // The GP loop's convergence test reads the lookahead
                // iterate; the returned major iterate can sit marginally
                // above the target. Polish must never worsen the real
                // achieved overflow, so the gate is the entry measurement
                // (or the target, whichever is looser).
                threshold = ratio.max(threshold);
            }
            if ratio > threshold || !all_finite(wl, &gx, &gy) {
                // The previous step broke the gate (or diverged): rewind
                // to the last iterate that held it and stop.
                model.pos_x.copy_from_slice(&prev_u_x);
                model.pos_y.copy_from_slice(&prev_u_y);
                break;
            }
            last_ratio = ratio;
            outcome.smooth_wl = wl;
            // The iterate evaluated above is now validated.
            prev_u_x.copy_from_slice(&model.pos_x);
            prev_u_y.copy_from_slice(&model.pos_y);
            if it == polish_iters {
                // Last pass is validation-only: never leave on an
                // unchecked step.
                break;
            }
            let mut max_d: f64 = 0.0;
            for i in 0..n {
                dir_x[i] = gx[i] / precond[i];
                dir_y[i] = gy[i] / precond[i];
                max_d = max_d.max(dir_x[i].abs().max(dir_y[i].abs()));
            }
            if max_d <= 1e-18 {
                break;
            }
            let alpha = (step_len / max_d) * step_scale;
            for i in 0..n {
                model.pos_x[i] -= dir_x[i] * alpha;
                model.pos_y[i] -= dir_y[i] * alpha;
            }
            model.clamp_to_die();
        }
        fence_project(model, regions, 0.5 * (bin_w + bin_h));
        outcome.overflow_ratio = last_ratio;
        outcome.gradient_evals = grad_evals;
    }
    trace.record_stage(format!("{stage}/grad_kernel"), grad_kernel_time);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin};
    use rdp_geom::Point;

    /// A chain of cells anchored at both ends, all starting at the center.
    fn chain_model(n: usize) -> Model {
        let die = Rect::new(0.0, 0.0, 200.0, 200.0);
        let mut nets = Vec::new();
        nets.push(ModelNet {
            weight: 1.0,
            pins: vec![ModelPin::fixed(Point::new(0.0, 100.0)), ModelPin::movable(0, Point::ORIGIN)],
        });
        for i in 0..n - 1 {
            nets.push(ModelNet {
                weight: 1.0,
                pins: vec![ModelPin::movable(i, Point::ORIGIN), ModelPin::movable(i + 1, Point::ORIGIN)],
            });
        }
        nets.push(ModelNet {
            weight: 1.0,
            pins: vec![
                ModelPin::movable(n - 1, Point::ORIGIN),
                ModelPin::fixed(Point::new(200.0, 100.0)),
            ],
        });
        Model::from_parts(
            (0..n).map(|i| Point::new(100.0 + (i as f64) * 1e-3, 100.0)).collect(),
            vec![(8.0, 10.0); n],
            vec![80.0; n],
            vec![false; n],
            vec![None; n],
            &nets,
            die,
            vec![],
        )
    }

    #[test]
    fn spreads_overlapping_cells() {
        let mut model = chain_model(40);
        let mut trace = Trace::new();
        let opts = GpOptions { max_outer: 20, inner_iters: 30, ..GpOptions::default() };
        let out = run_global_place(&mut model, &[], &[], &opts, &mut trace, "test").unwrap();
        assert!(
            out.overflow_ratio < 0.25,
            "cells did not spread: overflow {}",
            out.overflow_ratio
        );
        // Cells must have moved off the center pile.
        let spread = model.pos_x.iter().map(|x| (x - 100.0).abs()).fold(0.0f64, f64::max);
        assert!(spread > 10.0, "max spread {spread}");
        assert!(!trace.records.is_empty());
    }

    #[test]
    fn nesterov_electrostatic_spreads_cells() {
        let mut model = chain_model(40);
        let mut trace = Trace::new();
        let opts = GpOptions {
            max_outer: 20,
            inner_iters: 30,
            solver: GpSolver::Nesterov,
            density_model: GpDensityModel::Electrostatic,
            ..GpOptions::default()
        };
        let out = run_global_place(&mut model, &[], &[], &opts, &mut trace, "test").unwrap();
        assert!(
            out.overflow_ratio < 0.25,
            "cells did not spread: overflow {}",
            out.overflow_ratio
        );
        let spread = model.pos_x.iter().map(|x| (x - 100.0).abs()).fold(0.0f64, f64::max);
        assert!(spread > 10.0, "max spread {spread}");
        assert!(out.gradient_evals > 0);
        // The trace labels the rounds with the selected solver.
        assert!(trace.records.iter().all(|r| r.solver == "nesterov"));
        // And the final placement stays inside the die.
        for i in 0..model.len() {
            let (w, h) = model.size[i];
            let p = model.pos(i);
            assert!(p.x >= w / 2.0 - 1e-6 && p.x <= 200.0 - w / 2.0 + 1e-6, "obj {i} x {}", p.x);
            assert!(p.y >= h / 2.0 - 1e-6 && p.y <= 200.0 - h / 2.0 + 1e-6, "obj {i} y {}", p.y);
        }
    }

    #[test]
    fn solver_density_combinations_all_converge() {
        for (solver, dm) in [
            (GpSolver::ConjugateGradient, GpDensityModel::Electrostatic),
            (GpSolver::Nesterov, GpDensityModel::Bell),
        ] {
            let mut model = chain_model(30);
            let mut trace = Trace::new();
            let opts = GpOptions {
                max_outer: 20,
                inner_iters: 30,
                solver,
                density_model: dm,
                ..GpOptions::default()
            };
            let out = run_global_place(&mut model, &[], &[], &opts, &mut trace, "t").unwrap();
            assert!(
                out.overflow_ratio < 0.4,
                "{}/{} overflow {}",
                solver.label(),
                dm.label(),
                out.overflow_ratio
            );
        }
    }

    #[test]
    fn effective_bins_rounds_to_power_of_two_for_electrostatic() {
        let mut opts = GpOptions { density_model: GpDensityModel::Electrostatic, ..GpOptions::default() };
        // auto bins: √2000 ≈ 45 → 64
        assert_eq!(opts.effective_bins(2000), 64);
        // explicit bins are rounded up too
        opts.bins = 100;
        assert_eq!(opts.effective_bins(2000), 128);
        // the bell model keeps them verbatim
        opts.density_model = GpDensityModel::Bell;
        assert_eq!(opts.effective_bins(2000), 100);
        // the clamp ceiling 256 is itself a power of two
        opts.bins = 0;
        opts.density_model = GpDensityModel::Electrostatic;
        assert_eq!(opts.effective_bins(1_000_000), 256);
    }

    #[test]
    fn nesterov_diverged_input_surfaces_error() {
        let mut model = chain_model(10);
        model.pos_x[3] = f64::NAN;
        let mut trace = Trace::new();
        let opts = GpOptions {
            solver: GpSolver::Nesterov,
            density_model: GpDensityModel::Electrostatic,
            ..GpOptions::default()
        };
        let err = run_global_place(&mut model, &[], &[], &opts, &mut trace, "t").unwrap_err();
        assert_eq!(err.stage, "t");
        assert!(trace.events.iter().any(|e| e.kind() == "gp_diverged"));
    }

    #[test]
    fn wirelength_pull_keeps_chain_ordered_roughly() {
        let mut model = chain_model(20);
        let mut trace = Trace::new();
        let out =
            run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t").unwrap();
        assert!(out.smooth_wl.is_finite());
        // The two anchors at x=0 and x=200 stretch the chain: the first
        // cell should end left of the last one.
        assert!(
            model.pos_x[0] < model.pos_x[19],
            "chain inverted: {} vs {}",
            model.pos_x[0],
            model.pos_x[19]
        );
    }

    #[test]
    fn all_positions_stay_in_die() {
        let mut model = chain_model(30);
        let mut trace = Trace::new();
        run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t").unwrap();
        for i in 0..model.len() {
            let p = model.pos(i);
            let (w, h) = model.size[i];
            assert!(p.x >= w / 2.0 - 1e-6 && p.x <= 200.0 - w / 2.0 + 1e-6, "obj {i} x {}", p.x);
            assert!(p.y >= h / 2.0 - 1e-6 && p.y <= 200.0 - h / 2.0 + 1e-6, "obj {i} y {}", p.y);
        }
    }

    #[test]
    fn empty_model_is_a_noop() {
        let mut model = Model::from_parts(
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            &[],
            Rect::new(0.0, 0.0, 200.0, 200.0),
            vec![],
        );
        let mut trace = Trace::new();
        let out =
            run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t").unwrap();
        assert_eq!(out.outer_rounds, 0);
    }

    #[test]
    fn blocked_area_is_avoided() {
        let mut model = chain_model(30);
        let blocked = vec![(Rect::new(80.0, 80.0, 120.0, 120.0), 1.0)];
        let mut trace = Trace::new();
        let opts = GpOptions { max_outer: 24, ..GpOptions::default() };
        run_global_place(&mut model, &[], &blocked, &opts, &mut trace, "t").unwrap();
        // Density mass inside the blocked rect should be small: count
        // centers inside.
        let inside = (0..model.len())
            .map(|i| model.pos(i))
            .filter(|p| p.x > 85.0 && p.x < 115.0 && p.y > 85.0 && p.y < 115.0)
            .count();
        assert!(
            inside <= 6,
            "{inside} of 30 cells remain in the blocked region"
        );
    }

    #[test]
    fn non_finite_start_surfaces_diverged_not_panic() {
        let mut model = chain_model(10);
        model.pos_x[3] = f64::NAN;
        let mut trace = Trace::new();
        let err = run_global_place(&mut model, &[], &[], &GpOptions::default(), &mut trace, "t")
            .unwrap_err();
        assert_eq!(err.stage, "t");
        assert_eq!(err.retries, GpOptions::default().recovery.max_retries);
        assert!(trace.events.iter().any(|e| e.kind() == "gp_diverged"));
    }
}
