//! Bell-shaped density model (the NTUplace smoothing) with analytic
//! gradients, including per-fence density fields for hierarchical designs.
//!
//! Every object spreads its (possibly inflated) area over nearby bins with
//! a C¹ bell-shaped kernel; the penalty is the squared per-bin overflow
//! against a target capacity. Fixed nodes and — for the unfenced field —
//! fence interiors enter as blocked base area, and each fence region gets
//! its *own* field whose bins only cover the fence: this is the
//! "region-aware density" that lets one optimizer pass handle hierarchical
//! designs.

use crate::model::Model;
use rdp_geom::parallel::{chunk_spans, chunked_map, Parallelism};
use rdp_geom::{Point, Rect};

/// Member objects per parallel work chunk. Fixed (never derived from the
/// thread count) so deposit order — and therefore floating-point rounding —
/// is identical at every parallelism level.
const MEMBER_CHUNK: usize = 512;

/// The C¹ bell kernel of NTUplace: 1 at the object center, quadratic
/// falloff to zero at `w/2 + 2·bin` from the center.
#[inline]
fn bell(d: f64, w: f64, bw: f64) -> f64 {
    let d1 = w / 2.0 + bw;
    let d2 = w / 2.0 + 2.0 * bw;
    if d <= d1 {
        let a = 4.0 / ((w + 2.0 * bw) * (w + 4.0 * bw));
        1.0 - a * d * d
    } else if d <= d2 {
        let b = 2.0 / (bw * (w + 4.0 * bw));
        b * (d - d2) * (d - d2)
    } else {
        0.0
    }
}

/// Derivative of [`bell`] with respect to `d` (for `d ≥ 0`).
#[inline]
fn bell_grad(d: f64, w: f64, bw: f64) -> f64 {
    let d1 = w / 2.0 + bw;
    let d2 = w / 2.0 + 2.0 * bw;
    if d <= d1 {
        let a = 4.0 / ((w + 2.0 * bw) * (w + 4.0 * bw));
        -2.0 * a * d
    } else if d <= d2 {
        let b = 2.0 / (bw * (w + 4.0 * bw));
        2.0 * b * (d - d2)
    } else {
        0.0
    }
}

/// Aggregate density diagnostics of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DensityStats {
    /// Σ max(0, D_b − T_b)² — the penalty value the optimizer scales by λ.
    pub penalty: f64,
    /// Σ max(0, D_b − C_b) against raw capacity — the *overflow area*.
    pub overflow_area: f64,
    /// Largest D_b / C_b over bins with capacity.
    pub max_ratio: f64,
}

/// A rectangular bin grid with capacities carved down by blocked area.
#[derive(Debug, Clone)]
pub struct BinGrid {
    nx: usize,
    ny: usize,
    origin: Point,
    bin_w: f64,
    bin_h: f64,
    /// Free capacity per bin (bin area minus blocked area).
    capacity: Vec<f64>,
    /// Target per bin = capacity × target density.
    target: Vec<f64>,
    /// Scratch: spread movable density.
    density: Vec<f64>,
}

impl BinGrid {
    /// Creates an `nx × ny` grid over `area` with the given target density.
    pub fn new(area: Rect, nx: usize, ny: usize, target_density: f64) -> Self {
        let nx = nx.max(1);
        let ny = ny.max(1);
        let bin_w = area.width() / nx as f64;
        let bin_h = area.height() / ny as f64;
        let cap = bin_w * bin_h;
        BinGrid {
            nx,
            ny,
            origin: Point::new(area.xl, area.yl),
            bin_w,
            bin_h,
            capacity: vec![cap; nx * ny],
            target: vec![cap * target_density; nx * ny],
            density: vec![0.0; nx * ny],
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// Whether the grid has no bins.
    pub fn is_empty(&self) -> bool {
        self.capacity.is_empty()
    }

    /// Bin width.
    pub fn bin_w(&self) -> f64 {
        self.bin_w
    }

    /// Bin height.
    pub fn bin_h(&self) -> f64 {
        self.bin_h
    }

    /// Removes `occupancy` (0..=1) of the overlap of `rect` with each bin
    /// from that bin's capacity (and scales its target accordingly).
    pub fn block_rect(&mut self, rect: Rect, occupancy: f64, target_density: f64) {
        let (x0, x1) = self.x_range(rect.xl, rect.xh);
        let (y0, y1) = self.y_range(rect.yl, rect.yh);
        for by in y0..=y1 {
            for bx in x0..=x1 {
                let bin = self.bin_rect(bx, by);
                let ov = bin.overlap_area(rect) * occupancy;
                let idx = by * self.nx + bx;
                self.capacity[idx] = (self.capacity[idx] - ov).max(0.0);
                self.target[idx] = self.capacity[idx] * target_density;
            }
        }
    }

    fn bin_rect(&self, bx: usize, by: usize) -> Rect {
        let xl = self.origin.x + bx as f64 * self.bin_w;
        let yl = self.origin.y + by as f64 * self.bin_h;
        Rect::new(xl, yl, xl + self.bin_w, yl + self.bin_h)
    }

    fn x_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        let a = ((lo - self.origin.x) / self.bin_w).floor().max(0.0) as usize;
        let b = ((hi - self.origin.x) / self.bin_w).floor().max(0.0) as usize;
        (a.min(self.nx - 1), b.min(self.nx - 1))
    }

    fn y_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        let a = ((lo - self.origin.y) / self.bin_h).floor().max(0.0) as usize;
        let b = ((hi - self.origin.y) / self.bin_h).floor().max(0.0) as usize;
        (a.min(self.ny - 1), b.min(self.ny - 1))
    }

    fn bin_center(&self, bx: usize, by: usize) -> Point {
        Point::new(
            self.origin.x + (bx as f64 + 0.5) * self.bin_w,
            self.origin.y + (by as f64 + 0.5) * self.bin_h,
        )
    }

    /// Total free capacity.
    pub fn total_capacity(&self) -> f64 {
        self.capacity.iter().sum()
    }
}

/// One density domain: a bin grid plus the objects it constrains.
#[derive(Debug, Clone)]
pub struct DensityField {
    /// The bins.
    pub grid: BinGrid,
    /// Object indices (into the model) whose density lives in this field.
    pub members: Vec<u32>,
}

/// One chunk of pass 1: normalization scales for the chunk's members (in
/// member order) and the sparse `(bin, amount)` deposits they make (member
/// order, then row-major bin order — the historical sequential order).
fn rasterize_span(
    g: &BinGrid,
    model: &Model,
    members: &[u32],
    span: std::ops::Range<usize>,
) -> (Vec<f64>, Vec<(u32, f64)>) {
    let mut scales = vec![0.0f64; span.len()];
    let mut deposits: Vec<(u32, f64)> = Vec::new();
    for (si, &oi) in members[span].iter().enumerate() {
        let o = oi as usize;
        let (w, h) = model.size[o];
        let c = model.pos[o];
        let rx = w / 2.0 + 2.0 * g.bin_w;
        let ry = h / 2.0 + 2.0 * g.bin_h;
        let (x0, x1) = g.x_range(c.x - rx, c.x + rx);
        let (y0, y1) = g.y_range(c.y - ry, c.y + ry);
        let mut sum = 0.0;
        for by in y0..=y1 {
            let py = bell((c.y - g.bin_center(x0, by).y).abs(), h, g.bin_h);
            if py == 0.0 {
                continue;
            }
            for bx in x0..=x1 {
                let px = bell((c.x - g.bin_center(bx, by).x).abs(), w, g.bin_w);
                sum += px * py;
            }
        }
        if sum <= 0.0 {
            continue;
        }
        let scale = model.area[o] / sum;
        scales[si] = scale;
        for by in y0..=y1 {
            let py = bell((c.y - g.bin_center(x0, by).y).abs(), h, g.bin_h);
            if py == 0.0 {
                continue;
            }
            for bx in x0..=x1 {
                let px = bell((c.x - g.bin_center(bx, by).x).abs(), w, g.bin_w);
                deposits.push(((by * g.nx + bx) as u32, scale * px * py));
            }
        }
    }
    (scales, deposits)
}

/// One chunk of pass 2: the chain-rule gradient of each member in the span
/// (dense over the span, zero for members that deposited nothing).
fn gradient_span(
    g: &BinGrid,
    model: &Model,
    members: &[u32],
    scales: &[f64],
    residual: &[f64],
    span: std::ops::Range<usize>,
) -> Vec<Point> {
    let mut out = vec![Point::ORIGIN; span.len()];
    for (si, &oi) in members[span.clone()].iter().enumerate() {
        let o = oi as usize;
        let scale = scales[span.start + si];
        if scale == 0.0 {
            continue;
        }
        let (w, h) = model.size[o];
        let c = model.pos[o];
        let rx = w / 2.0 + 2.0 * g.bin_w;
        let ry = h / 2.0 + 2.0 * g.bin_h;
        let (x0, x1) = g.x_range(c.x - rx, c.x + rx);
        let (y0, y1) = g.y_range(c.y - ry, c.y + ry);
        let mut gx = 0.0;
        let mut gy = 0.0;
        for by in y0..=y1 {
            let dyv = c.y - g.bin_center(x0, by).y;
            let py = bell(dyv.abs(), h, g.bin_h);
            let dpy = bell_grad(dyv.abs(), h, g.bin_h) * dyv.signum();
            if py == 0.0 && dpy == 0.0 {
                continue;
            }
            for bx in x0..=x1 {
                let dxv = c.x - g.bin_center(bx, by).x;
                let px = bell(dxv.abs(), w, g.bin_w);
                let dpx = bell_grad(dxv.abs(), w, g.bin_w) * dxv.signum();
                let r = residual[by * g.nx + bx];
                if r == 0.0 {
                    continue;
                }
                gx += r * scale * dpx * py;
                gy += r * scale * px * dpy;
            }
        }
        out[si] = Point::new(gx, gy);
    }
    out
}

impl DensityField {
    /// Spreads the members' areas, computes the penalty and **adds** the
    /// *unscaled* penalty gradient (`∂penalty/∂pos`) into `grad`, using up
    /// to `par` worker threads.
    ///
    /// Members are partitioned into fixed-size chunks; each chunk
    /// rasterizes against the immutable grid geometry and its sparse bin
    /// deposits are merged back **in member order**, so the result is
    /// bitwise identical at every thread count (and to the historical
    /// sequential implementation). The per-member gradient read-back
    /// parallelizes the same way.
    ///
    /// Bins also receive gradient-free clamping: an object whose kernel
    /// support lies fully outside the grid contributes nothing (it is the
    /// fence pull-in force's job to bring it back).
    pub fn penalty_grad_par(
        &mut self,
        model: &Model,
        grad: &mut [Point],
        par: Parallelism,
    ) -> DensityStats {
        let g = &mut self.grid;
        g.density.iter_mut().for_each(|d| *d = 0.0);
        let spans: Vec<_> = chunk_spans(self.members.len(), MEMBER_CHUNK).collect();

        // Pass 1: rasterize chunks in parallel, then deposit in chunk
        // (= member) order.
        let mut scales = vec![0.0f64; self.members.len()];
        {
            let g_ro: &BinGrid = g;
            let members: &[u32] = &self.members;
            let partials = chunked_map(par, spans.len(), |ci| {
                rasterize_span(g_ro, model, members, spans[ci].clone())
            });
            for (span, (chunk_scales, deposits)) in spans.iter().zip(&partials) {
                scales[span.clone()].copy_from_slice(chunk_scales);
                for &(bin, amount) in deposits {
                    g.density[bin as usize] += amount;
                }
            }
        }

        // Penalty and per-bin residuals (O(bins): cheap, kept sequential so
        // the reduction order is trivially canonical).
        let mut stats = DensityStats::default();
        let mut residual = vec![0.0f64; g.density.len()];
        for (i, r) in residual.iter_mut().enumerate() {
            let over = (g.density[i] - g.target[i]).max(0.0);
            stats.penalty += over * over;
            *r = 2.0 * over;
            stats.overflow_area += (g.density[i] - g.capacity[i]).max(0.0);
            if g.capacity[i] > 1e-12 {
                stats.max_ratio = stats.max_ratio.max(g.density[i] / g.capacity[i]);
            }
        }

        // Pass 2: chain rule into object positions, one chunk of members at
        // a time (each member's accumulation is internal to its chunk, so
        // merge order only has to respect member order).
        {
            let g_ro: &BinGrid = g;
            let members: &[u32] = &self.members;
            let scales_ro: &[f64] = &scales;
            let residual_ro: &[f64] = &residual;
            let partials = chunked_map(par, spans.len(), |ci| {
                gradient_span(g_ro, model, members, scales_ro, residual_ro, spans[ci].clone())
            });
            for (span, chunk_grad) in spans.iter().zip(&partials) {
                for (si, gp) in chunk_grad.iter().enumerate() {
                    let o = self.members[span.start + si] as usize;
                    grad[o].x += gp.x;
                    grad[o].y += gp.y;
                }
            }
        }
        stats
    }

    /// Single-threaded [`DensityField::penalty_grad_par`] (the historical
    /// entry point).
    pub fn penalty_grad(&mut self, model: &Model, grad: &mut [Point]) -> DensityStats {
        self.penalty_grad_par(model, grad, Parallelism::single())
    }
}

/// Builds the density fields for `model`: field 0 for unfenced objects
/// (with fixed nodes and fence interiors blocked) and one field per fence
/// region restricted to the fence rects.
///
/// `blocked` lists (rect, occupancy) pairs of immovable area — fixed nodes,
/// typically. `bins` is the bin count per axis of the main field; fence
/// fields scale their bin counts to the fence bounding box.
pub fn build_fields(
    model: &Model,
    regions: &[rdp_db::Region],
    blocked: &[(Rect, f64)],
    bins: usize,
    target_density: f64,
) -> Vec<DensityField> {
    let mut fields = Vec::with_capacity(regions.len() + 1);

    // Main field: all unfenced objects.
    let mut main = BinGrid::new(model.die, bins, bins, target_density);
    for &(r, occ) in blocked {
        main.block_rect(r, occ, target_density);
    }
    for region in regions {
        for &r in region.rects() {
            main.block_rect(r, 1.0, target_density);
        }
    }
    let members: Vec<u32> = (0..model.len() as u32)
        .filter(|&i| model.region[i as usize].is_none())
        .collect();
    fields.push(DensityField { grid: main, members });

    // One field per fence: bins over the fence bbox, everything outside the
    // fence rects blocked.
    for (ri, region) in regions.iter().enumerate() {
        let bbox = region.bounding_box();
        let frac = (bbox.area() / model.die.area()).sqrt().max(0.05);
        let fb = ((bins as f64 * frac).ceil() as usize).clamp(4, bins);
        let mut grid = BinGrid::new(bbox, fb, fb, target_density);
        // Block everything, then re-open the fence rects.
        // (block, then unblock is not expressible; instead block the
        // complement: iterate bins and clip against the rects.)
        for by in 0..grid.ny {
            for bx in 0..grid.nx {
                let bin = grid.bin_rect(bx, by);
                let inside: f64 = region.rects().iter().map(|r| bin.overlap_area(*r)).sum();
                let idx = by * grid.nx + bx;
                grid.capacity[idx] = inside.min(grid.capacity[idx]);
                grid.target[idx] = grid.capacity[idx] * target_density;
            }
        }
        for &(r, occ) in blocked {
            grid.block_rect(r, occ, target_density);
        }
        let members: Vec<u32> = (0..model.len() as u32)
            .filter(|&i| model.region[i as usize].map(|r| r.index()) == Some(ri))
            .collect();
        fields.push(DensityField { grid, members });
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin};

    fn toy_model(positions: &[(f64, f64)], size: (f64, f64)) -> Model {
        let n = positions.len();
        Model {
            pos: positions.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            size: vec![size; n],
            area: vec![size.0 * size.1; n],
            is_macro: vec![false; n],
            region: vec![None; n],
            nets: vec![ModelNet {
                weight: 1.0,
                pins: vec![ModelPin::movable(0, Point::ORIGIN); 2.min(n)],
            }],
            die: Rect::new(0.0, 0.0, 100.0, 100.0),
            node_of: vec![],
        }
    }

    fn field_for(model: &Model, bins: usize, target: f64) -> DensityField {
        DensityField {
            grid: BinGrid::new(model.die, bins, bins, target),
            members: (0..model.len() as u32).collect(),
        }
    }

    #[test]
    fn bell_kernel_shape() {
        let (w, bw) = (4.0, 10.0);
        assert!((bell(0.0, w, bw) - 1.0).abs() < 1e-12);
        assert_eq!(bell(w / 2.0 + 2.0 * bw, w, bw), 0.0);
        assert_eq!(bell(1000.0, w, bw), 0.0);
        // Continuity at the piece boundary.
        let d1 = w / 2.0 + bw;
        assert!((bell(d1 - 1e-9, w, bw) - bell(d1 + 1e-9, w, bw)).abs() < 1e-6);
        // C1 continuity.
        assert!((bell_grad(d1 - 1e-9, w, bw) - bell_grad(d1 + 1e-9, w, bw)).abs() < 1e-6);
        // Monotone decreasing on [0, d2].
        assert!(bell(1.0, w, bw) > bell(5.0, w, bw));
        assert!(bell(5.0, w, bw) > bell(15.0, w, bw));
    }

    #[test]
    fn mass_conservation() {
        // One cell mid-grid: total deposited density equals its area.
        let model = toy_model(&[(50.0, 50.0)], (4.0, 10.0));
        let mut f = field_for(&model, 10, 1.0);
        let mut grad = vec![Point::ORIGIN; 1];
        f.penalty_grad(&model, &mut grad);
        let total: f64 = f.grid.density.iter().sum();
        assert!((total - 40.0).abs() < 1e-9, "deposited {total}, area 40");
    }

    #[test]
    fn overcrowded_bin_pushes_cells_apart() {
        // Two cells stacked at the same point with a low target: gradients
        // must point outward (opposite x signs once perturbed).
        let model = toy_model(&[(50.0, 50.0), (51.0, 50.0)], (8.0, 10.0));
        let mut f = field_for(&model, 20, 0.2);
        let mut grad = vec![Point::ORIGIN; 2];
        let stats = f.penalty_grad(&model, &mut grad);
        assert!(stats.penalty > 0.0);
        // Descent direction −grad separates them.
        assert!(grad[0].x > -grad[1].x || grad[0].x < grad[1].x, "degenerate gradients");
        assert!(-grad[0].x < -grad[1].x, "left cell moves left, right cell moves right");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let model = toy_model(&[(42.0, 57.0), (47.0, 53.0)], (6.0, 10.0));
        let mut f = field_for(&model, 12, 0.3);
        let mut grad = vec![Point::ORIGIN; 2];
        f.penalty_grad(&model, &mut grad);
        let h = 1e-6;
        #[allow(clippy::needless_range_loop)]
        for i in 0..2 {
            for axis in 0..2 {
                let mut mp = model.clone();
                let mut mm = model.clone();
                if axis == 0 {
                    mp.pos[i].x += h;
                    mm.pos[i].x -= h;
                } else {
                    mp.pos[i].y += h;
                    mm.pos[i].y -= h;
                }
                let fp = field_for(&model, 12, 0.3).penalty_grad(&mp, &mut [Point::ORIGIN; 2]).penalty;
                let fm = field_for(&model, 12, 0.3).penalty_grad(&mm, &mut [Point::ORIGIN; 2]).penalty;
                let fd = (fp - fm) / (2.0 * h);
                let an = if axis == 0 { grad[i].x } else { grad[i].y };
                assert!(
                    (fd - an).abs() < 1e-3 * (1.0 + fd.abs()),
                    "obj {i} axis {axis}: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn blocked_area_reduces_capacity() {
        let mut g = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10, 0.8);
        let before = g.total_capacity();
        g.block_rect(Rect::new(0.0, 0.0, 50.0, 50.0), 1.0, 0.8);
        let after = g.total_capacity();
        assert!((before - after - 2500.0).abs() < 1e-9);
        // Partial occupancy blocks proportionally.
        g.block_rect(Rect::new(50.0, 50.0, 60.0, 60.0), 0.5, 0.8);
        assert!((after - g.total_capacity() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fields_partition_objects_by_region() {
        use rdp_db::{Region, RegionId};
        let mut model = toy_model(&[(10.0, 10.0), (80.0, 80.0), (81.0, 81.0)], (4.0, 10.0));
        model.region[1] = Some(RegionId(0));
        model.region[2] = Some(RegionId(0));
        let regions = vec![Region::new("R", vec![Rect::new(60.0, 60.0, 100.0, 100.0)])];
        let fields = build_fields(&model, &regions, &[], 10, 0.8);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].members, vec![0]);
        assert_eq!(fields[1].members, vec![1, 2]);
        // The fence field has capacity only inside the fence.
        let fence_cap = fields[1].grid.total_capacity();
        assert!((fence_cap - 1600.0).abs() < 1e-6, "fence capacity {fence_cap}");
        // The main field lost the fence area.
        let main_cap = fields[0].grid.total_capacity();
        assert!((main_cap - (10_000.0 - 1600.0)).abs() < 1e-6, "main capacity {main_cap}");
    }

    #[test]
    fn out_of_grid_object_contributes_nothing() {
        let model = toy_model(&[(500.0, 500.0)], (4.0, 10.0));
        let mut f = field_for(&model, 10, 1.0);
        let mut grad = vec![Point::ORIGIN; 1];
        let stats = f.penalty_grad(&model, &mut grad);
        let total: f64 = f.grid.density.iter().sum();
        // The kernel support is far outside: nothing deposited, no gradient.
        assert_eq!(total, 0.0);
        assert_eq!(grad[0], Point::ORIGIN);
        assert_eq!(stats.penalty, 0.0);
    }
}
