//! Bell-shaped density model (the NTUplace smoothing) with analytic
//! gradients, including per-fence density fields for hierarchical designs.
//!
//! Every object spreads its (possibly inflated) area over nearby bins with
//! a C¹ bell-shaped kernel; the penalty is the squared per-bin overflow
//! against a target capacity. Fixed nodes and — for the unfenced field —
//! fence interiors enter as blocked base area, and each fence region gets
//! its *own* field whose bins only cover the fence: this is the
//! "region-aware density" that lets one optimizer pass handle hierarchical
//! designs.
//!
//! # Kernel structure (million-cell hot path)
//!
//! The bell kernel is separable: the deposit into bin `(bx, by)` is
//! `scale · px(bx) · py(by)` where `px` depends only on the bin column and
//! `py` only on the row. One evaluation therefore runs in four passes over
//! reusable scratch (no per-iteration allocation):
//!
//! 1. **Ranges** — each member's touched bin window, in parallel chunks;
//! 2. **Bell caches** — per-member `px`/`py` factor arrays (CSR layout)
//!    and the normalization scale, in parallel chunks. Caching the factors
//!    cuts `bell` evaluations from O(window²) to O(window) per member and
//!    feeds passes 3–4 with bitwise-identical values;
//! 3. **Deposits** — the density grid is split into disjoint *row bands*;
//!    each band deposits the members touching it in ascending member
//!    order, so every bin receives its contributions in exactly the
//!    historical sequential order while bands run concurrently;
//! 4. **Gradients** — per-member chain-rule read-back in parallel chunks,
//!    then a sequential member-order scatter into the object gradient.
//!
//! The penalty/residual reduction between passes 3 and 4 stays sequential
//! so its rounding order is trivially canonical. The `reference` module
//! keeps the pre-refactor kernel; property tests pin bitwise equality.

use crate::model::Model;
use rdp_geom::parallel::{
    chunk_spans, chunked_map_parts, chunked_map_parts_with, split_at_spans, Parallelism,
};
use rdp_geom::{Point, Rect};

/// Member objects per parallel work chunk. Fixed (never derived from the
/// thread count) so deposit order — and therefore floating-point rounding —
/// is identical at every parallelism level.
const MEMBER_CHUNK: usize = 512;

/// Bin rows per deposit band. Fixed so band boundaries depend only on the
/// grid size; the partition never affects values (each bin lies in exactly
/// one band), only parallelism.
const BAND_ROWS: usize = 4;

/// The C¹ bell kernel of NTUplace: 1 at the object center, quadratic
/// falloff to zero at `w/2 + 2·bin` from the center.
#[inline]
pub(crate) fn bell(d: f64, w: f64, bw: f64) -> f64 {
    let d1 = w / 2.0 + bw;
    let d2 = w / 2.0 + 2.0 * bw;
    if d <= d1 {
        let a = 4.0 / ((w + 2.0 * bw) * (w + 4.0 * bw));
        1.0 - a * d * d
    } else if d <= d2 {
        let b = 2.0 / (bw * (w + 4.0 * bw));
        b * (d - d2) * (d - d2)
    } else {
        0.0
    }
}

/// Derivative of [`bell`] with respect to `d` (for `d ≥ 0`).
#[inline]
pub(crate) fn bell_grad(d: f64, w: f64, bw: f64) -> f64 {
    let d1 = w / 2.0 + bw;
    let d2 = w / 2.0 + 2.0 * bw;
    if d <= d1 {
        let a = 4.0 / ((w + 2.0 * bw) * (w + 4.0 * bw));
        -2.0 * a * d
    } else if d <= d2 {
        let b = 2.0 / (bw * (w + 4.0 * bw));
        2.0 * b * (d - d2)
    } else {
        0.0
    }
}

/// Aggregate density diagnostics of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DensityStats {
    /// Σ max(0, D_b − T_b)² — the penalty value the optimizer scales by λ.
    pub penalty: f64,
    /// Σ max(0, D_b − C_b) against raw capacity — the *overflow area*.
    pub overflow_area: f64,
    /// Largest D_b / C_b over bins with capacity.
    pub max_ratio: f64,
}

/// A rectangular bin grid with capacities carved down by blocked area.
#[derive(Debug, Clone)]
pub struct BinGrid {
    pub(crate) nx: usize,
    pub(crate) ny: usize,
    pub(crate) origin: Point,
    pub(crate) bin_w: f64,
    pub(crate) bin_h: f64,
    /// Free capacity per bin (bin area minus blocked area).
    pub(crate) capacity: Vec<f64>,
    /// Target per bin = capacity × target density.
    pub(crate) target: Vec<f64>,
    /// Scratch: spread movable density.
    pub(crate) density: Vec<f64>,
}

impl BinGrid {
    /// Creates an `nx × ny` grid over `area` with the given target density.
    pub fn new(area: Rect, nx: usize, ny: usize, target_density: f64) -> Self {
        let nx = nx.max(1);
        let ny = ny.max(1);
        let bin_w = area.width() / nx as f64;
        let bin_h = area.height() / ny as f64;
        let cap = bin_w * bin_h;
        BinGrid {
            nx,
            ny,
            origin: Point::new(area.xl, area.yl),
            bin_w,
            bin_h,
            capacity: vec![cap; nx * ny],
            target: vec![cap * target_density; nx * ny],
            density: vec![0.0; nx * ny],
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// Whether the grid has no bins.
    pub fn is_empty(&self) -> bool {
        self.capacity.is_empty()
    }

    /// Bin width.
    pub fn bin_w(&self) -> f64 {
        self.bin_w
    }

    /// Bin height.
    pub fn bin_h(&self) -> f64 {
        self.bin_h
    }

    /// Removes `occupancy` (0..=1) of the overlap of `rect` with each bin
    /// from that bin's capacity (and scales its target accordingly).
    pub fn block_rect(&mut self, rect: Rect, occupancy: f64, target_density: f64) {
        let (x0, x1) = self.x_range(rect.xl, rect.xh);
        let (y0, y1) = self.y_range(rect.yl, rect.yh);
        for by in y0..=y1 {
            for bx in x0..=x1 {
                let bin = self.bin_rect(bx, by);
                let ov = bin.overlap_area(rect) * occupancy;
                let idx = by * self.nx + bx;
                self.capacity[idx] = (self.capacity[idx] - ov).max(0.0);
                self.target[idx] = self.capacity[idx] * target_density;
            }
        }
    }

    pub(crate) fn bin_rect(&self, bx: usize, by: usize) -> Rect {
        let xl = self.origin.x + bx as f64 * self.bin_w;
        let yl = self.origin.y + by as f64 * self.bin_h;
        Rect::new(xl, yl, xl + self.bin_w, yl + self.bin_h)
    }

    pub(crate) fn x_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        let a = ((lo - self.origin.x) / self.bin_w).floor().max(0.0) as usize;
        let b = ((hi - self.origin.x) / self.bin_w).floor().max(0.0) as usize;
        (a.min(self.nx - 1), b.min(self.nx - 1))
    }

    pub(crate) fn y_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        let a = ((lo - self.origin.y) / self.bin_h).floor().max(0.0) as usize;
        let b = ((hi - self.origin.y) / self.bin_h).floor().max(0.0) as usize;
        (a.min(self.ny - 1), b.min(self.ny - 1))
    }

    pub(crate) fn bin_center(&self, bx: usize, by: usize) -> Point {
        Point::new(
            self.origin.x + (bx as f64 + 0.5) * self.bin_w,
            self.origin.y + (by as f64 + 0.5) * self.bin_h,
        )
    }

    /// Total free capacity.
    pub fn total_capacity(&self) -> f64 {
        self.capacity.iter().sum()
    }
}

/// Reusable evaluation scratch of a [`DensityField`]: member bin windows,
/// separable bell caches (CSR over members), band buckets, residuals and
/// per-member gradients. All buffers persist across optimizer iterations.
#[derive(Debug, Clone, Default)]
pub(crate) struct DensityScratch {
    /// Member chunk spans (rebuilt when the member count changes).
    spans: Vec<std::ops::Range<usize>>,
    /// Per member: touched bin window (x0, x1, y0, y1), inclusive.
    ranges: Vec<(u32, u32, u32, u32)>,
    /// Per member: normalization scale (0 ⇒ deposits nothing).
    scales: Vec<f64>,
    /// CSR starts into `px` (window columns per member).
    px_start: Vec<u32>,
    /// Cached x-axis bell factors.
    px: Vec<f64>,
    /// CSR starts into `py` (window rows per member).
    py_start: Vec<u32>,
    /// Cached y-axis bell factors.
    py: Vec<f64>,
    /// Per-bin penalty residual `2·max(0, D − T)`.
    residual: Vec<f64>,
    /// Per deposit band: member slots touching it, ascending.
    band_members: Vec<Vec<u32>>,
    /// Per-member gradient accumulators.
    member_gx: Vec<f64>,
    member_gy: Vec<f64>,
}

/// One window-pass work item: the member span plus its disjoint range
/// output slice.
pub(crate) type WindowPart<'a> = (std::ops::Range<usize>, &'a mut [(u32, u32, u32, u32)]);

/// One bell-cache work item: member span plus its disjoint `px`/`py`/scale
/// output slices.
pub(crate) type BellPart<'a> = (std::ops::Range<usize>, &'a mut [f64], &'a mut [f64], &'a mut [f64]);

/// The bell-cache stage: its work items plus the (shared) window table the
/// bodies read. Both borrow disjoint fields of one [`DensityScratch`].
pub(crate) struct BellStage<'a> {
    pub(crate) parts: Vec<BellPart<'a>>,
    pub(crate) ranges: &'a [(u32, u32, u32, u32)],
}

/// Shared immutable inputs of the deposit pass (pass 3).
pub(crate) struct DepositCtx<'a> {
    pub(crate) nx: usize,
    pub(crate) ny: usize,
    pub(crate) ranges: &'a [(u32, u32, u32, u32)],
    pub(crate) scales: &'a [f64],
    pub(crate) px_start: &'a [u32],
    pub(crate) py_start: &'a [u32],
    pub(crate) px: &'a [f64],
    pub(crate) py: &'a [f64],
    pub(crate) band_members: &'a [Vec<u32>],
}

/// Shared immutable inputs of the chain-rule pass (pass 4), plus its work
/// items (disjoint per-member gradient slices).
pub(crate) struct ChainStage<'a> {
    pub(crate) parts: Vec<(std::ops::Range<usize>, &'a mut [f64], &'a mut [f64])>,
    pub(crate) ranges: &'a [(u32, u32, u32, u32)],
    pub(crate) scales: &'a [f64],
    pub(crate) px_start: &'a [u32],
    pub(crate) py_start: &'a [u32],
    pub(crate) px: &'a [f64],
    pub(crate) py: &'a [f64],
    pub(crate) residual: &'a [f64],
}

/// The deposit-band spans of an `nx × ny` grid: fixed [`BAND_ROWS`]-row
/// bands whose boundaries depend only on the grid size.
pub(crate) fn band_spans(nx: usize, ny: usize) -> Vec<std::ops::Range<usize>> {
    (0..ny.div_ceil(BAND_ROWS))
        .map(|b| b * BAND_ROWS * nx..((b + 1) * BAND_ROWS).min(ny) * nx)
        .collect()
}

impl DensityScratch {
    /// Resizes every per-member buffer for `n` members (spans rebuilt only
    /// when the member count changed).
    pub(crate) fn prepare(&mut self, n: usize) {
        if self.spans.last().map_or(0, |s| s.end) != n {
            self.spans = chunk_spans(n, MEMBER_CHUNK).collect();
        }
        self.ranges.resize(n, (0, 0, 0, 0));
        self.scales.resize(n, 0.0);
        self.member_gx.resize(n, 0.0);
        self.member_gy.resize(n, 0.0);
    }

    /// Window-pass work items (pass 1).
    pub(crate) fn window_parts(&mut self) -> Vec<WindowPart<'_>> {
        split_at_spans(&mut self.ranges, &self.spans)
            .into_iter()
            .zip(self.spans.iter().cloned())
            .map(|(out, span)| (span, out))
            .collect()
    }

    /// CSR starts for the bell caches plus band buckets — sequential
    /// (prefix sums and ordered pushes). Must run after pass 1 filled
    /// `ranges`.
    pub(crate) fn bucket_and_csr(&mut self, ny: usize) {
        let num_bands = ny.div_ceil(BAND_ROWS);
        self.band_members.resize(num_bands, Vec::new());
        for b in &mut self.band_members {
            b.clear();
        }
        self.px_start.clear();
        self.py_start.clear();
        self.px_start.push(0);
        self.py_start.push(0);
        let (mut px_len, mut py_len) = (0u32, 0u32);
        for (si, &(x0, x1, y0, y1)) in self.ranges.iter().enumerate() {
            px_len += x1 - x0 + 1;
            py_len += y1 - y0 + 1;
            self.px_start.push(px_len);
            self.py_start.push(py_len);
            for band in (y0 as usize / BAND_ROWS)..=(y1 as usize / BAND_ROWS) {
                self.band_members[band].push(si as u32);
            }
        }
        self.px.resize(px_len as usize, 0.0);
        self.py.resize(py_len as usize, 0.0);
    }

    /// Bell-cache work items plus the window table (pass 2).
    pub(crate) fn bell_stage(&mut self) -> BellStage<'_> {
        let px_spans: Vec<_> = self
            .spans
            .iter()
            .map(|s| self.px_start[s.start] as usize..self.px_start[s.end] as usize)
            .collect();
        let py_spans: Vec<_> = self
            .spans
            .iter()
            .map(|s| self.py_start[s.start] as usize..self.py_start[s.end] as usize)
            .collect();
        let px_parts = split_at_spans(&mut self.px, &px_spans);
        let py_parts = split_at_spans(&mut self.py, &py_spans);
        let scale_parts = split_at_spans(&mut self.scales, &self.spans);
        let parts = self
            .spans
            .iter()
            .cloned()
            .zip(px_parts)
            .zip(py_parts)
            .zip(scale_parts)
            .map(|(((span, px), py), sc)| (span, px, py, sc))
            .collect();
        BellStage { parts, ranges: &self.ranges }
    }

    /// Deposit-pass shared inputs (pass 3).
    pub(crate) fn deposit_ctx(&self, nx: usize, ny: usize) -> DepositCtx<'_> {
        DepositCtx {
            nx,
            ny,
            ranges: &self.ranges,
            scales: &self.scales,
            px_start: &self.px_start,
            py_start: &self.py_start,
            px: &self.px,
            py: &self.py,
            band_members: &self.band_members,
        }
    }

    /// Chain-rule work items plus shared inputs (pass 4).
    pub(crate) fn chain_stage(&mut self) -> ChainStage<'_> {
        let gx_parts = split_at_spans(&mut self.member_gx, &self.spans);
        let gy_parts = split_at_spans(&mut self.member_gy, &self.spans);
        let parts = self
            .spans
            .iter()
            .cloned()
            .zip(gx_parts)
            .zip(gy_parts)
            .map(|((span, gx), gy)| (span, gx, gy))
            .collect();
        ChainStage {
            parts,
            ranges: &self.ranges,
            scales: &self.scales,
            px_start: &self.px_start,
            py_start: &self.py_start,
            px: &self.px,
            py: &self.py,
            residual: &self.residual,
        }
    }

    /// The per-member gradients written by pass 4.
    pub(crate) fn member_grads(&self) -> (&[f64], &[f64]) {
        (&self.member_gx, &self.member_gy)
    }

    /// Sequential penalty/residual reduction over the filled density slab
    /// (see [`reduce_penalty`]); exposed as a method so the fused pass can
    /// reach the private residual buffer.
    pub(crate) fn reduce(&mut self, grid: &BinGrid) -> DensityStats {
        reduce_penalty(grid, &mut self.residual)
    }
}

/// Pass-1 body: each member's touched bin window (bell support inflated by
/// two bins per side). Shared verbatim by [`DensityField::penalty_grad_par`]
/// and the fused gradient pass ([`crate::fused`]).
pub(crate) fn den_window_body(
    model: &Model,
    members: &[u32],
    grid: &BinGrid,
    part: &mut WindowPart<'_>,
) {
    let (span, out) = part;
    let (bin_w, bin_h) = (grid.bin_w, grid.bin_h);
    for (slot, &oi) in out.iter_mut().zip(&members[span.clone()]) {
        let o = oi as usize;
        let (w, h) = model.size[o];
        let (cx, cy) = (model.pos_x[o], model.pos_y[o]);
        let rx = w / 2.0 + 2.0 * bin_w;
        let ry = h / 2.0 + 2.0 * bin_h;
        let (x0, x1) = grid.x_range(cx - rx, cx + rx);
        let (y0, y1) = grid.y_range(cy - ry, cy + ry);
        *slot = (x0 as u32, x1 as u32, y0 as u32, y1 as u32);
    }
}

/// Pass-2 body: per-member separable bell factor caches plus the
/// normalization scale, with the deposit sum in historical row-major order.
pub(crate) fn den_bell_body(
    model: &Model,
    members: &[u32],
    ranges: &[(u32, u32, u32, u32)],
    grid: &BinGrid,
    part: &mut BellPart<'_>,
) {
    let (span, px_out, py_out, sc_out) = part;
    let (bin_w, bin_h) = (grid.bin_w, grid.bin_h);
    let origin = grid.origin;
    let bin_center_x = |bx: usize| origin.x + (bx as f64 + 0.5) * bin_w;
    let bin_center_y = |by: usize| origin.y + (by as f64 + 0.5) * bin_h;
    let (mut px_off, mut py_off) = (0usize, 0usize);
    for (j, si) in span.clone().enumerate() {
        let o = members[si] as usize;
        let (w, h) = model.size[o];
        let (cx, cy) = (model.pos_x[o], model.pos_y[o]);
        let (x0, x1, y0, y1) = ranges[si];
        let (x0, x1) = (x0 as usize, x1 as usize);
        let (y0, y1) = (y0 as usize, y1 as usize);
        let pxs = &mut px_out[px_off..px_off + (x1 - x0 + 1)];
        let pys = &mut py_out[py_off..py_off + (y1 - y0 + 1)];
        px_off += pxs.len();
        py_off += pys.len();
        for (v, bx) in pxs.iter_mut().zip(x0..=x1) {
            *v = bell((cx - bin_center_x(bx)).abs(), w, bin_w);
        }
        for (v, by) in pys.iter_mut().zip(y0..=y1) {
            *v = bell((cy - bin_center_y(by)).abs(), h, bin_h);
        }
        let mut sum = 0.0;
        for &py in pys.iter() {
            if py == 0.0 {
                continue;
            }
            for &px in pxs.iter() {
                sum += px * py;
            }
        }
        sc_out[j] = if sum <= 0.0 { 0.0 } else { model.area[o] / sum };
    }
}

/// Pass-3 body: deposits one disjoint row band, members in ascending order
/// — every bin accumulates its contributions in the historical
/// member-major sequence.
pub(crate) fn den_deposit_body(ctx: &DepositCtx<'_>, band: usize, density: &mut [f64]) {
    let row_lo = band * BAND_ROWS;
    let row_hi = ((band + 1) * BAND_ROWS).min(ctx.ny); // exclusive
    for &si32 in &ctx.band_members[band] {
        let si = si32 as usize;
        let scale = ctx.scales[si];
        if scale == 0.0 {
            continue;
        }
        let (x0, x1, y0, y1) = ctx.ranges[si];
        let (x0, x1) = (x0 as usize, x1 as usize);
        let (y0, y1) = (y0 as usize, y1 as usize);
        let pxs = &ctx.px[ctx.px_start[si] as usize..ctx.px_start[si + 1] as usize];
        let pys = &ctx.py[ctx.py_start[si] as usize..ctx.py_start[si + 1] as usize];
        for by in y0.max(row_lo)..=(y1.min(row_hi - 1)) {
            let py = pys[by - y0];
            if py == 0.0 {
                continue;
            }
            let row = &mut density[(by - row_lo) * ctx.nx..];
            for (bx, &px) in (x0..=x1).zip(pxs) {
                row[bx] += scale * px * py;
            }
        }
    }
}

/// The sequential penalty/residual reduction between passes 3 and 4
/// (canonical bin-order rounding).
pub(crate) fn reduce_penalty(grid: &BinGrid, residual: &mut Vec<f64>) -> DensityStats {
    let mut stats = DensityStats::default();
    residual.resize(grid.density.len(), 0.0);
    for (i, r) in residual.iter_mut().enumerate() {
        let over = (grid.density[i] - grid.target[i]).max(0.0);
        stats.penalty += over * over;
        *r = 2.0 * over;
        stats.overflow_area += (grid.density[i] - grid.capacity[i]).max(0.0);
        if grid.capacity[i] > 1e-12 {
            stats.max_ratio = stats.max_ratio.max(grid.density[i] / grid.capacity[i]);
        }
    }
    stats
}

/// Pass-4 body: chain-rule read-back of one member chunk into its disjoint
/// per-member gradient slices. `dpx_row` is per-worker scratch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn den_chain_body(
    model: &Model,
    members: &[u32],
    grid: &BinGrid,
    ctx: &ChainStage<'_>,
    dpx_row: &mut Vec<f64>,
    span: std::ops::Range<usize>,
    gx_out: &mut [f64],
    gy_out: &mut [f64],
) {
    let nx = grid.nx;
    let (bin_w, bin_h) = (grid.bin_w, grid.bin_h);
    let origin = grid.origin;
    let bin_center_x = |bx: usize| origin.x + (bx as f64 + 0.5) * bin_w;
    let bin_center_y = |by: usize| origin.y + (by as f64 + 0.5) * bin_h;
    for (j, si) in span.enumerate() {
        let scale = ctx.scales[si];
        if scale == 0.0 {
            gx_out[j] = 0.0;
            gy_out[j] = 0.0;
            continue;
        }
        let o = members[si] as usize;
        let (w, h) = model.size[o];
        let (cx, cy) = (model.pos_x[o], model.pos_y[o]);
        let (x0, x1, y0, y1) = ctx.ranges[si];
        let (x0, x1) = (x0 as usize, x1 as usize);
        let (y0, y1) = (y0 as usize, y1 as usize);
        let pxs = &ctx.px[ctx.px_start[si] as usize..ctx.px_start[si + 1] as usize];
        let pys = &ctx.py[ctx.py_start[si] as usize..ctx.py_start[si + 1] as usize];
        // The x-axis bell gradient depends only on the column:
        // hoist it out of the row loop (same values, same
        // accumulation order — just fewer evaluations).
        dpx_row.clear();
        for bx in x0..=x1 {
            let dxv = cx - bin_center_x(bx);
            dpx_row.push(bell_grad(dxv.abs(), w, bin_w) * dxv.signum());
        }
        let mut gx = 0.0;
        let mut gy = 0.0;
        for by in y0..=y1 {
            let dyv = cy - bin_center_y(by);
            let py = pys[by - y0];
            let dpy = bell_grad(dyv.abs(), h, bin_h) * dyv.signum();
            if py == 0.0 && dpy == 0.0 {
                continue;
            }
            let row = &ctx.residual[by * nx + x0..=by * nx + x1];
            for ((&r, &px), &dpx) in row.iter().zip(pxs).zip(dpx_row.iter()) {
                if r == 0.0 {
                    continue;
                }
                gx += r * scale * dpx * py;
                gy += r * scale * px * dpy;
            }
        }
        gx_out[j] = gx;
        gy_out[j] = gy;
    }
}

/// Ordered scatter of per-member gradients into the object gradient:
/// ascending member order, one addition per member and axis (the historical
/// merge order — members that deposited nothing add an exact `0.0`).
pub(crate) fn scatter_grads(
    members: &[u32],
    member_gx: &[f64],
    member_gy: &[f64],
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) {
    for (si, &oi) in members.iter().enumerate() {
        let o = oi as usize;
        grad_x[o] += member_gx[si];
        grad_y[o] += member_gy[si];
    }
}

/// One density domain: a bin grid plus the objects it constrains.
#[derive(Debug, Clone)]
pub struct DensityField {
    /// The bins.
    pub grid: BinGrid,
    /// Object indices (into the model) whose density lives in this field.
    pub members: Vec<u32>,
    /// Reusable evaluation scratch.
    pub(crate) scratch: DensityScratch,
}

impl DensityField {
    /// A field over `grid` constraining `members`.
    pub fn new(grid: BinGrid, members: Vec<u32>) -> Self {
        DensityField { grid, members, scratch: DensityScratch::default() }
    }

    /// Spreads the members' areas, computes the penalty and **adds** the
    /// *unscaled* penalty gradient (`∂penalty/∂pos`) into
    /// `grad_x`/`grad_y`, using up to `par` worker threads.
    ///
    /// Members are partitioned into fixed-size chunks and the grid into
    /// fixed row bands; every floating-point accumulation (bin deposits in
    /// member order, penalty reduction in bin order, gradient scatter in
    /// member order) happens in the historical sequential order, so the
    /// result is bitwise identical at every thread count and to the
    /// pre-layout-refactor kernel (see [`crate::reference`]).
    ///
    /// An object whose kernel support lies fully outside the grid
    /// contributes nothing (it is the fence pull-in force's job to bring
    /// it back).
    pub fn penalty_grad_par(
        &mut self,
        model: &Model,
        grad_x: &mut [f64],
        grad_y: &mut [f64],
        par: &Parallelism,
    ) -> DensityStats {
        let DensityField { grid, members, scratch } = self;
        let (nx, ny) = (grid.nx, grid.ny);

        grid.density.iter_mut().for_each(|d| *d = 0.0);
        scratch.prepare(members.len());

        // Pass 1: bin windows, parallel over member chunks.
        {
            let parts = scratch.window_parts();
            let members: &[u32] = members;
            let grid_ro: &BinGrid = grid;
            chunked_map_parts(par, parts, |_ci, part| {
                den_window_body(model, members, grid_ro, part)
            });
        }

        // CSR starts for the bell caches + band buckets (sequential:
        // prefix sums and ordered pushes).
        scratch.bucket_and_csr(ny);

        // Pass 2: bell factor caches + normalization scales, parallel over
        // member chunks (each chunk owns contiguous cache and scale
        // slices). The deposit sum runs in the historical row-major order
        // over the cached factors — identical values, identical order.
        {
            let BellStage { parts, ranges } = scratch.bell_stage();
            let members: &[u32] = members;
            let grid_ro: &BinGrid = grid;
            chunked_map_parts(par, parts, |_ci, part| {
                den_bell_body(model, members, ranges, grid_ro, part)
            });
        }

        // Pass 3: deposits, parallel over disjoint row bands. Within a
        // band, members run in ascending order, so every bin accumulates
        // its contributions in the historical member-major order.
        {
            let spans = band_spans(nx, ny);
            let parts: Vec<_> = split_at_spans(&mut grid.density, &spans)
                .into_iter()
                .enumerate()
                .collect();
            let ctx = scratch.deposit_ctx(nx, ny);
            chunked_map_parts(par, parts, |_ci, (band, density)| {
                den_deposit_body(&ctx, *band, density)
            });
        }

        // Penalty and per-bin residuals (O(bins): cheap, kept sequential so
        // the reduction order is trivially canonical).
        let stats = reduce_penalty(grid, &mut scratch.residual);

        // Pass 4: chain rule into per-member gradients, parallel over
        // member chunks.
        {
            let stage = scratch.chain_stage();
            let ChainStage { parts, .. } = stage;
            let ctx = ChainStage { parts: Vec::new(), ..stage };
            let members: &[u32] = members;
            let grid_ro: &BinGrid = grid;
            chunked_map_parts_with(
                par,
                parts,
                Vec::new,
                |dpx_row: &mut Vec<f64>, _ci, (span, gx_out, gy_out)| {
                    den_chain_body(model, members, grid_ro, &ctx, dpx_row, span.clone(), gx_out, gy_out)
                },
            );
        }

        // Ordered scatter into the object gradient.
        let (mgx, mgy) = scratch.member_grads();
        scatter_grads(members, mgx, mgy, grad_x, grad_y);
        stats
    }

    /// Single-threaded [`DensityField::penalty_grad_par`] (the historical
    /// entry point).
    pub fn penalty_grad(
        &mut self,
        model: &Model,
        grad_x: &mut [f64],
        grad_y: &mut [f64],
    ) -> DensityStats {
        self.penalty_grad_par(model, grad_x, grad_y, &Parallelism::single())
    }
}

/// Builds the density fields for `model`: field 0 for unfenced objects
/// (with fixed nodes and fence interiors blocked) and one field per fence
/// region restricted to the fence rects.
///
/// `blocked` lists (rect, occupancy) pairs of immovable area — fixed nodes,
/// typically. `bins` is the bin count per axis of the main field; fence
/// fields scale their bin counts to the fence bounding box.
pub fn build_fields(
    model: &Model,
    regions: &[rdp_db::Region],
    blocked: &[(Rect, f64)],
    bins: usize,
    target_density: f64,
) -> Vec<DensityField> {
    let mut fields = Vec::with_capacity(regions.len() + 1);

    // Main field: all unfenced objects.
    let mut main = BinGrid::new(model.die, bins, bins, target_density);
    for &(r, occ) in blocked {
        main.block_rect(r, occ, target_density);
    }
    for region in regions {
        for &r in region.rects() {
            main.block_rect(r, 1.0, target_density);
        }
    }
    let members: Vec<u32> = (0..model.len() as u32)
        .filter(|&i| model.region[i as usize].is_none())
        .collect();
    fields.push(DensityField::new(main, members));

    // One field per fence: bins over the fence bbox, everything outside the
    // fence rects blocked.
    for (ri, region) in regions.iter().enumerate() {
        let bbox = region.bounding_box();
        let frac = (bbox.area() / model.die.area()).sqrt().max(0.05);
        let fb = ((bins as f64 * frac).ceil() as usize).clamp(4, bins);
        let mut grid = BinGrid::new(bbox, fb, fb, target_density);
        // Block everything, then re-open the fence rects.
        // (block, then unblock is not expressible; instead block the
        // complement: iterate bins and clip against the rects.)
        for by in 0..grid.ny {
            for bx in 0..grid.nx {
                let bin = grid.bin_rect(bx, by);
                let inside: f64 = region.rects().iter().map(|r| bin.overlap_area(*r)).sum();
                let idx = by * grid.nx + bx;
                grid.capacity[idx] = inside.min(grid.capacity[idx]);
                grid.target[idx] = grid.capacity[idx] * target_density;
            }
        }
        for &(r, occ) in blocked {
            grid.block_rect(r, occ, target_density);
        }
        let members: Vec<u32> = (0..model.len() as u32)
            .filter(|&i| model.region[i as usize].map(|r| r.index()) == Some(ri))
            .collect();
        fields.push(DensityField::new(grid, members));
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin};

    fn toy_model(positions: &[(f64, f64)], size: (f64, f64)) -> Model {
        let n = positions.len();
        Model::from_parts(
            positions.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            vec![size; n],
            vec![size.0 * size.1; n],
            vec![false; n],
            vec![None; n],
            &[ModelNet {
                weight: 1.0,
                pins: vec![ModelPin::movable(0, Point::ORIGIN); 2.min(n)],
            }],
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        )
    }

    fn field_for(model: &Model, bins: usize, target: f64) -> DensityField {
        DensityField::new(
            BinGrid::new(model.die, bins, bins, target),
            (0..model.len() as u32).collect(),
        )
    }

    fn eval(f: &mut DensityField, model: &Model) -> (DensityStats, Vec<f64>, Vec<f64>) {
        let mut gx = vec![0.0; model.len()];
        let mut gy = vec![0.0; model.len()];
        let stats = f.penalty_grad(model, &mut gx, &mut gy);
        (stats, gx, gy)
    }

    #[test]
    fn bell_kernel_shape() {
        let (w, bw) = (4.0, 10.0);
        assert!((bell(0.0, w, bw) - 1.0).abs() < 1e-12);
        assert_eq!(bell(w / 2.0 + 2.0 * bw, w, bw), 0.0);
        assert_eq!(bell(1000.0, w, bw), 0.0);
        // Continuity at the piece boundary.
        let d1 = w / 2.0 + bw;
        assert!((bell(d1 - 1e-9, w, bw) - bell(d1 + 1e-9, w, bw)).abs() < 1e-6);
        // C1 continuity.
        assert!((bell_grad(d1 - 1e-9, w, bw) - bell_grad(d1 + 1e-9, w, bw)).abs() < 1e-6);
        // Monotone decreasing on [0, d2].
        assert!(bell(1.0, w, bw) > bell(5.0, w, bw));
        assert!(bell(5.0, w, bw) > bell(15.0, w, bw));
    }

    #[test]
    fn mass_conservation() {
        // One cell mid-grid: total deposited density equals its area.
        let model = toy_model(&[(50.0, 50.0)], (4.0, 10.0));
        let mut f = field_for(&model, 10, 1.0);
        eval(&mut f, &model);
        let total: f64 = f.grid.density.iter().sum();
        assert!((total - 40.0).abs() < 1e-9, "deposited {total}, area 40");
    }

    #[test]
    fn overcrowded_bin_pushes_cells_apart() {
        // Two cells stacked at the same point with a low target: gradients
        // must point outward (opposite x signs once perturbed).
        let model = toy_model(&[(50.0, 50.0), (51.0, 50.0)], (8.0, 10.0));
        let mut f = field_for(&model, 20, 0.2);
        let (stats, gx, _gy) = eval(&mut f, &model);
        assert!(stats.penalty > 0.0);
        // Descent direction −grad separates them.
        assert!(gx[0] > -gx[1] || gx[0] < gx[1], "degenerate gradients");
        assert!(-gx[0] < -gx[1], "left cell moves left, right cell moves right");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let model = toy_model(&[(42.0, 57.0), (47.0, 53.0)], (6.0, 10.0));
        let mut f = field_for(&model, 12, 0.3);
        let (_, gx, gy) = eval(&mut f, &model);
        let h = 1e-6;
        for i in 0..2 {
            for axis in 0..2 {
                let mut mp = model.clone();
                let mut mm = model.clone();
                if axis == 0 {
                    mp.pos_x[i] += h;
                    mm.pos_x[i] -= h;
                } else {
                    mp.pos_y[i] += h;
                    mm.pos_y[i] -= h;
                }
                let fp = eval(&mut field_for(&model, 12, 0.3), &mp).0.penalty;
                let fm = eval(&mut field_for(&model, 12, 0.3), &mm).0.penalty;
                let fd = (fp - fm) / (2.0 * h);
                let an = if axis == 0 { gx[i] } else { gy[i] };
                assert!(
                    (fd - an).abs() < 1e-3 * (1.0 + fd.abs()),
                    "obj {i} axis {axis}: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn blocked_area_reduces_capacity() {
        let mut g = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10, 0.8);
        let before = g.total_capacity();
        g.block_rect(Rect::new(0.0, 0.0, 50.0, 50.0), 1.0, 0.8);
        let after = g.total_capacity();
        assert!((before - after - 2500.0).abs() < 1e-9);
        // Partial occupancy blocks proportionally.
        g.block_rect(Rect::new(50.0, 50.0, 60.0, 60.0), 0.5, 0.8);
        assert!((after - g.total_capacity() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fields_partition_objects_by_region() {
        use rdp_db::{Region, RegionId};
        let mut model = toy_model(&[(10.0, 10.0), (80.0, 80.0), (81.0, 81.0)], (4.0, 10.0));
        model.region[1] = Some(RegionId(0));
        model.region[2] = Some(RegionId(0));
        let regions = vec![Region::new("R", vec![Rect::new(60.0, 60.0, 100.0, 100.0)])];
        let fields = build_fields(&model, &regions, &[], 10, 0.8);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].members, vec![0]);
        assert_eq!(fields[1].members, vec![1, 2]);
        // The fence field has capacity only inside the fence.
        let fence_cap = fields[1].grid.total_capacity();
        assert!((fence_cap - 1600.0).abs() < 1e-6, "fence capacity {fence_cap}");
        // The main field lost the fence area.
        let main_cap = fields[0].grid.total_capacity();
        assert!((main_cap - (10_000.0 - 1600.0)).abs() < 1e-6, "main capacity {main_cap}");
    }

    #[test]
    fn out_of_grid_object_contributes_nothing() {
        let model = toy_model(&[(500.0, 500.0)], (4.0, 10.0));
        let mut f = field_for(&model, 10, 1.0);
        let (stats, gx, gy) = eval(&mut f, &model);
        let total: f64 = f.grid.density.iter().sum();
        // The kernel support is far outside: nothing deposited, no gradient.
        assert_eq!(total, 0.0);
        assert_eq!(gx[0], 0.0);
        assert_eq!(gy[0], 0.0);
        assert_eq!(stats.penalty, 0.0);
    }

    #[test]
    fn parallel_matches_single_thread_bitwise() {
        // A grid of overlapping cells spanning several bands and chunks.
        let positions: Vec<(f64, f64)> = (0..600)
            .map(|i| (((i * 13) % 95) as f64 + 2.5, ((i * 29) % 91) as f64 + 4.5))
            .collect();
        let model = toy_model(&positions, (5.0, 7.0));
        let mut base_f = field_for(&model, 24, 0.4);
        let mut bgx = vec![0.0; model.len()];
        let mut bgy = vec![0.0; model.len()];
        let base = base_f.penalty_grad_par(&model, &mut bgx, &mut bgy, &Parallelism::single());
        for threads in [2, 8] {
            let mut f = field_for(&model, 24, 0.4);
            let mut gx = vec![0.0; model.len()];
            let mut gy = vec![0.0; model.len()];
            let stats = f.penalty_grad_par(&model, &mut gx, &mut gy, &Parallelism::new(threads));
            assert_eq!(stats.penalty.to_bits(), base.penalty.to_bits(), "threads={threads}");
            assert_eq!(
                stats.overflow_area.to_bits(),
                base.overflow_area.to_bits(),
                "threads={threads}"
            );
            for (a, b) in f.grid.density.iter().zip(&base_f.grid.density) {
                assert_eq!(a.to_bits(), b.to_bits(), "density differs at {threads} threads");
            }
            for i in 0..model.len() {
                assert_eq!(gx[i].to_bits(), bgx[i].to_bits(), "t={threads} i={i}");
                assert_eq!(gy[i].to_bits(), bgy[i].to_bits(), "t={threads} i={i}");
            }
        }
    }
}
