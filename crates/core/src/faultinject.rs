//! Deterministic fault-injection harness (compiled in only with the
//! `fault-inject` feature, like the in-tree RNG is gated for tests).
//!
//! Tests arm a list of [`Fault`]s on their own thread, run the placer, and
//! disarm to learn how many faults actually fired. Every hook site lives
//! on the orchestrating thread (the one that calls `Placer::run`): the
//! parallel kernels never consult the armed list, so injection cannot
//! perturb the bitwise thread-count invariance of the kernels — a faulted
//! run at 1 thread is bitwise identical to the same faulted run at 8.
//!
//! With the feature disabled the hook functions still exist but compile to
//! inlined `false`/`0` constants, so the production flow pays nothing.

#[cfg(feature = "fault-inject")]
use std::cell::RefCell;

/// One injectable fault, matched at a deterministic point of the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Poison the combined gradient (and smooth WL) of a GP iteration with
    /// NaN. `stage` matches the GP stage label; an empty string matches
    /// every stage. Fires in outer round `outer`, up to `times` times
    /// (retries of the same round keep re-firing until spent, which is
    /// what exercises the bounded-retry path).
    NanGradient {
        /// GP stage label to match (`""` = any stage).
        stage: String,
        /// Outer (penalty) round to fire in.
        outer: usize,
        /// How many times to fire before the fault is spent.
        times: usize,
    },
    /// Write non-finite usage onto the first `edges` edges of the
    /// congestion grid after routability round `round` produced it.
    /// (Injected as `+∞`: the grid's usage accumulator clamps with
    /// `max(0.0)`, which swallows NaN but propagates infinity.)
    CorruptCongestion {
        /// Inflation round to corrupt.
        round: usize,
        /// Number of grid edges to poison.
        edges: usize,
    },
    /// Pretend the router blew its time budget in routability round
    /// `round` (forces the estimator fallback without needing a slow
    /// design).
    RouterBudgetExhausted {
        /// Inflation round to fire in.
        round: usize,
    },
    /// Pretend the inflation wall-clock budget expired at routability
    /// round `round`.
    InflationBudgetExhausted {
        /// Inflation round to fire in.
        round: usize,
    },
}

#[cfg(feature = "fault-inject")]
thread_local! {
    static ARMED: RefCell<Vec<Fault>> = const { RefCell::new(Vec::new()) };
    static FIRED: RefCell<usize> = const { RefCell::new(0) };
}

/// Arms `faults` for placer runs on the *current thread*, replacing any
/// previously armed set and resetting the fired counter.
#[cfg(feature = "fault-inject")]
pub fn arm(faults: Vec<Fault>) {
    ARMED.with(|a| *a.borrow_mut() = faults);
    FIRED.with(|f| *f.borrow_mut() = 0);
}

/// Disarms all faults on the current thread and returns how many fired
/// since the last [`arm`].
#[cfg(feature = "fault-inject")]
pub fn disarm() -> usize {
    ARMED.with(|a| a.borrow_mut().clear());
    FIRED.with(|f| std::mem::take(&mut *f.borrow_mut()))
}

#[cfg(feature = "fault-inject")]
fn record_fired(n: usize) {
    if n > 0 {
        FIRED.with(|f| *f.borrow_mut() += n);
    }
}

/// Hook: should this GP iteration's gradient be poisoned with NaN?
#[cfg(feature = "fault-inject")]
pub(crate) fn fire_nan_gradient(stage: &str, outer: usize) -> bool {
    let hit = ARMED.with(|a| {
        let mut armed = a.borrow_mut();
        for f in armed.iter_mut() {
            if let Fault::NanGradient { stage: s, outer: o, times } = f {
                if (s.is_empty() || s == stage) && *o == outer && *times > 0 {
                    *times -= 1;
                    return true;
                }
            }
        }
        false
    });
    if hit {
        record_fired(1);
    }
    hit
}

/// Hook: poison the congestion grid after routability round `round`.
/// Returns the number of edges corrupted.
#[cfg(feature = "fault-inject")]
pub(crate) fn corrupt_congestion(grid: &mut rdp_route::RouteGrid, round: usize) -> usize {
    let edges = ARMED.with(|a| {
        let mut armed = a.borrow_mut();
        for f in armed.iter_mut() {
            if let Fault::CorruptCongestion { round: r, edges } = f {
                if *r == round && *edges > 0 {
                    return std::mem::take(edges);
                }
            }
        }
        0
    });
    let mut corrupted = 0;
    if edges > 0 {
        let targets: Vec<_> = grid.edge_ids().take(edges).collect();
        for edge in targets {
            grid.add_usage(edge, f64::INFINITY);
            corrupted += 1;
        }
        record_fired(corrupted);
    }
    corrupted
}

/// Hook: pretend the router blew its budget in routability round `round`.
#[cfg(feature = "fault-inject")]
pub(crate) fn fire_router_budget(round: usize) -> bool {
    fire_round_fault(round, |f, r| matches!(f, Fault::RouterBudgetExhausted { round } if *round == r))
}

/// Hook: pretend the inflation budget expired at routability round `round`.
#[cfg(feature = "fault-inject")]
pub(crate) fn fire_inflation_budget(round: usize) -> bool {
    fire_round_fault(round, |f, r| {
        matches!(f, Fault::InflationBudgetExhausted { round } if *round == r)
    })
}

#[cfg(feature = "fault-inject")]
fn fire_round_fault(round: usize, matches: impl Fn(&Fault, usize) -> bool) -> bool {
    let hit = ARMED.with(|a| {
        let mut armed = a.borrow_mut();
        if let Some(i) = armed.iter().position(|f| matches(f, round)) {
            armed.remove(i);
            true
        } else {
            false
        }
    });
    if hit {
        record_fired(1);
    }
    hit
}

// ---- feature-off stubs: always present so call sites need no cfg ----

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn fire_nan_gradient(_stage: &str, _outer: usize) -> bool {
    false
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn corrupt_congestion(_grid: &mut rdp_route::RouteGrid, _round: usize) -> usize {
    0
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn fire_router_budget(_round: usize) -> bool {
    false
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn fire_inflation_budget(_round: usize) -> bool {
    false
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn nan_gradient_fires_exactly_times() {
        arm(vec![Fault::NanGradient { stage: "gp/final".into(), outer: 1, times: 2 }]);
        assert!(!fire_nan_gradient("gp/final", 0));
        assert!(fire_nan_gradient("gp/final", 1));
        assert!(fire_nan_gradient("gp/final", 1));
        assert!(!fire_nan_gradient("gp/final", 1));
        assert!(!fire_nan_gradient("gp/level0", 1));
        assert_eq!(disarm(), 2);
    }

    #[test]
    fn empty_stage_matches_any() {
        arm(vec![Fault::NanGradient { stage: String::new(), outer: 0, times: 1 }]);
        assert!(fire_nan_gradient("gp/level2", 0));
        assert_eq!(disarm(), 1);
    }

    #[test]
    fn round_faults_fire_once() {
        arm(vec![
            Fault::RouterBudgetExhausted { round: 1 },
            Fault::InflationBudgetExhausted { round: 2 },
        ]);
        assert!(!fire_router_budget(0));
        assert!(fire_router_budget(1));
        assert!(!fire_router_budget(1));
        assert!(fire_inflation_budget(2));
        assert_eq!(disarm(), 2);
    }
}
