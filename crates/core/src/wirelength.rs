//! Smooth wirelength models: log-sum-exp (LSE) and weighted-average (WA).
//!
//! Analytical placement needs a differentiable stand-in for HPWL. The
//! classic choice is LSE; the line of work this paper builds on introduced
//! the **weighted-average** model, which provably has a smaller modeling
//! error than LSE at the same smoothing parameter γ — that claim is
//! property-tested here and measured by experiment **T4**.
//!
//! Both models are implemented with max-shift exponent stabilization (the
//! "numerical stability scheme" of the WA paper): exponents are computed
//! relative to the per-net extreme coordinate, so γ can anneal to a small
//! fraction of a bin without overflow.
//!
//! The stabilization is *stateless*: the max/min anchor of every net is
//! re-derived from the current coordinates on each evaluation, never
//! cached. That is what makes divergence recovery sound — when the
//! optimizer restores a finite iterate after a blow-up, the very next
//! evaluation anchors its exponents to the restored (finite) extremes, so
//! no stale shift can re-poison the model. A non-finite result from these
//! functions is therefore a property of the *input iterate*, detectable
//! with [`all_finite`] and recoverable by restoring coordinates, not a
//! sticky internal state.
//!
//! # Kernel structure (million-cell hot path)
//!
//! The evaluation runs in two phases over the model's CSR pin arena:
//!
//! 1. **Per-net phase** — nets are split into fixed 256-net chunks; each
//!    chunk writes weight-scaled per-pin gradients and per-net totals into
//!    *disjoint* slices of flat scratch arrays (the chunk's pin range
//!    `net_pin_start[c.start] .. net_pin_start[c.end]` is contiguous), so
//!    workers never contend and no per-chunk `Vec` of sparse contributions
//!    is allocated. Exponentials are computed **once** per pin-axis and
//!    cached for the gradient formula — the old kernel recomputed them,
//!    and `exp` dominates the per-pin cost.
//! 2. **Gather phase** — per-object gradients are accumulated by walking
//!    the model's object→pin transpose in ascending pin order, which is
//!    exactly the order the historical scatter added the same terms in, so
//!    the result is bitwise identical to the pre-layout-refactor kernel
//!    (the `reference` module holds that kernel; the layout-equivalence
//!    property tests enforce the identity).
//!
//! Sums whose order is observable stay strictly sequential; only the
//! order-free max/min folds use explicit 4-lane chunking (see
//! `DESIGN.md` §10 for why that preserves bitwise determinism).

use crate::model::{Model, FIXED_PIN};
use rdp_geom::parallel::{
    chunk_spans, chunked_map_parts_with, split_at_spans, Parallelism,
};

/// Nets per parallel work chunk. Fixed (never derived from the thread
/// count) so chunk boundaries — and therefore the floating-point reduction
/// order — are identical at every parallelism level.
const NET_CHUNK: usize = 256;

/// Objects per parallel gather chunk.
const OBJ_CHUNK: usize = 4096;

/// Which smooth wirelength model the optimizer differentiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WirelengthModel {
    /// Log-sum-exp: `γ·ln Σ e^{x/γ} + γ·ln Σ e^{-x/γ}` (overestimates HPWL).
    Lse,
    /// Weighted-average: `Σx·e^{x/γ}/Σe^{x/γ} − Σx·e^{-x/γ}/Σe^{-x/γ}`
    /// (underestimates HPWL; tighter than LSE). The default.
    #[default]
    Wa,
}

/// Maximum over a coordinate slice, 4 lanes wide with a fixed-order tail
/// fold. `max` over finite values is associative and commutative (and the
/// sign of a zero result cannot propagate into the shifted exponents), so
/// re-associating into lanes is bitwise safe while letting the
/// autovectorizer lift the loop. The lane combination order is fixed, so
/// the result is also independent of everything but the input.
#[inline]
fn fold_max(v: &[f64]) -> f64 {
    let mut lanes = [f64::NEG_INFINITY; 4];
    let mut chunks = v.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] = lanes[0].max(c[0]);
        lanes[1] = lanes[1].max(c[1]);
        lanes[2] = lanes[2].max(c[2]);
        lanes[3] = lanes[3].max(c[3]);
    }
    let mut m = lanes[0].max(lanes[1]).max(lanes[2].max(lanes[3]));
    for &x in chunks.remainder() {
        m = m.max(x);
    }
    m
}

/// Minimum over a coordinate slice; see [`fold_max`].
#[inline]
fn fold_min(v: &[f64]) -> f64 {
    let mut lanes = [f64::INFINITY; 4];
    let mut chunks = v.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] = lanes[0].min(c[0]);
        lanes[1] = lanes[1].min(c[1]);
        lanes[2] = lanes[2].min(c[2]);
        lanes[3] = lanes[3].min(c[3]);
    }
    let mut m = lanes[0].min(lanes[1]).min(lanes[2].min(lanes[3]));
    for &x in chunks.remainder() {
        m = m.min(x);
    }
    m
}

/// One axis of one net, evaluated with the LSE model. Returns the smooth
/// span and writes `∂/∂coord` for each pin into `pin_grad`. `ep`/`em`
/// cache the shifted exponentials between the sum and gradient passes
/// (identical inputs ⇒ identical values ⇒ bitwise identical to
/// recomputing them, at half the `exp` count).
fn lse_axis(coords: &[f64], gamma: f64, pin_grad: &mut [f64], ep: &mut Vec<f64>, em: &mut Vec<f64>) -> f64 {
    let max = fold_max(coords);
    let min = fold_min(coords);
    let n = coords.len();
    if ep.len() < n {
        ep.resize(n, 0.0);
        em.resize(n, 0.0);
    }
    let (ep, em) = (&mut ep[..n], &mut em[..n]);
    let mut s_max = 0.0;
    let mut s_min = 0.0;
    for ((&x, e_p), e_m) in coords.iter().zip(ep.iter_mut()).zip(em.iter_mut()) {
        *e_p = ((x - max) / gamma).exp();
        *e_m = ((min - x) / gamma).exp();
        s_max += *e_p;
        s_min += *e_m;
    }
    for ((g, &e_p), &e_m) in pin_grad.iter_mut().zip(ep.iter()).zip(em.iter()) {
        *g = e_p / s_max - e_m / s_min;
    }
    gamma * s_max.ln() + max + gamma * s_min.ln() - min
}

/// One axis of one net with the WA model; exponential caching as in
/// [`lse_axis`].
fn wa_axis(coords: &[f64], gamma: f64, pin_grad: &mut [f64], ep: &mut Vec<f64>, em: &mut Vec<f64>) -> f64 {
    let max = fold_max(coords);
    let min = fold_min(coords);
    let n = coords.len();
    if ep.len() < n {
        ep.resize(n, 0.0);
        em.resize(n, 0.0);
    }
    let (ep, em) = (&mut ep[..n], &mut em[..n]);
    let (mut s_p, mut t_p, mut s_m, mut t_m) = (0.0, 0.0, 0.0, 0.0);
    for ((&x, e_p), e_m) in coords.iter().zip(ep.iter_mut()).zip(em.iter_mut()) {
        *e_p = ((x - max) / gamma).exp();
        *e_m = ((min - x) / gamma).exp();
        s_p += *e_p;
        t_p += x * *e_p;
        s_m += *e_m;
        t_m += x * *e_m;
    }
    let f_max = t_p / s_p;
    let f_min = t_m / s_m;
    for (((g, &x), &e_p), &e_m) in
        pin_grad.iter_mut().zip(coords).zip(ep.iter()).zip(em.iter())
    {
        let d_max = e_p / s_p * (1.0 + (x - f_max) / gamma);
        let d_min = e_m / s_m * (1.0 - (x - f_min) / gamma);
        *g = d_max - d_min;
    }
    f_max - f_min
}

/// Reusable scratch for [`smooth_wl_grad_par`]: chunk spans plus the flat
/// per-pin gradient and per-net total arrays. Hoisted by the optimizer so
/// no allocation happens per iteration.
#[derive(Debug, Clone, Default)]
pub struct WlScratch {
    net_spans: Vec<std::ops::Range<usize>>,
    obj_spans: Vec<std::ops::Range<usize>>,
    spans_for: (usize, usize),
    pin_grad_x: Vec<f64>,
    pin_grad_y: Vec<f64>,
    net_total: Vec<f64>,
}

/// One net-phase work item: the net span plus its disjoint per-pin gradient
/// and per-net total output slices (see [`WlScratch::net_parts`]).
pub(crate) type WlNetPart<'a> = (std::ops::Range<usize>, &'a mut [f64], &'a mut [f64], &'a mut [f64]);

/// One gather-phase work item: the object span plus its disjoint gradient
/// output slices (see [`WlScratch::obj_parts`]).
pub(crate) type WlObjPart<'a> = (std::ops::Range<usize>, &'a mut [f64], &'a mut [f64]);

impl WlScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        WlScratch::default()
    }

    pub(crate) fn prepare(&mut self, model: &Model) {
        let key = (model.num_nets(), model.len());
        if self.spans_for != key {
            self.net_spans = chunk_spans(key.0, NET_CHUNK).collect();
            self.obj_spans = chunk_spans(key.1, OBJ_CHUNK).collect();
            self.spans_for = key;
        }
        self.pin_grad_x.resize(model.num_pins(), 0.0);
        self.pin_grad_y.resize(model.num_pins(), 0.0);
        self.net_total.resize(model.num_nets(), 0.0);
    }

    /// Net-phase work items: one per fixed 256-net chunk, each owning the
    /// contiguous pin range its nets cover. Call after [`WlScratch::prepare`].
    pub(crate) fn net_parts(&mut self, model: &Model) -> Vec<WlNetPart<'_>> {
        let pin_spans: Vec<std::ops::Range<usize>> = self
            .net_spans
            .iter()
            .map(|s| model.net_pin_start[s.start] as usize..model.net_pin_start[s.end] as usize)
            .collect();
        let gx_parts = split_at_spans(&mut self.pin_grad_x, &pin_spans);
        let gy_parts = split_at_spans(&mut self.pin_grad_y, &pin_spans);
        let total_parts = split_at_spans(&mut self.net_total, &self.net_spans);
        self.net_spans
            .iter()
            .cloned()
            .zip(gx_parts)
            .zip(gy_parts)
            .zip(total_parts)
            .map(|(((span, gx), gy), nt)| (span, gx, gy, nt))
            .collect()
    }

    /// Gather-phase work items over the caller's gradient buffers.
    pub(crate) fn obj_parts<'a>(
        &self,
        grad_x: &'a mut [f64],
        grad_y: &'a mut [f64],
    ) -> Vec<WlObjPart<'a>> {
        let gx_parts = split_at_spans(grad_x, &self.obj_spans);
        let gy_parts = split_at_spans(grad_y, &self.obj_spans);
        self.obj_spans
            .iter()
            .cloned()
            .zip(gx_parts)
            .zip(gy_parts)
            .map(|((span, gx), gy)| (span, gx, gy))
            .collect()
    }

    /// The per-pin gradients written by the net phase (gather-phase input).
    pub(crate) fn pin_grads(&self) -> (&[f64], &[f64]) {
        (&self.pin_grad_x, &self.pin_grad_y)
    }

    /// The per-net totals written by the net phase.
    pub(crate) fn net_totals(&self) -> &[f64] {
        &self.net_total
    }
}

/// Per-worker scratch of the net phase: coordinate and exponential
/// staging for one net at a time.
#[derive(Default)]
pub(crate) struct AxisScratch {
    xs: Vec<f64>,
    ys: Vec<f64>,
    ep: Vec<f64>,
    em: Vec<f64>,
}

/// Net-phase body: evaluates one chunk of nets, writing weight-scaled
/// per-pin gradients and per-net totals into the part's disjoint slices.
/// Shared verbatim by [`smooth_wl_grad_par`] and the fused gradient pass
/// ([`crate::fused`]) so both produce bitwise identical values.
pub(crate) fn wl_net_phase(
    model: &Model,
    which: WirelengthModel,
    gamma: f64,
    ax: &mut AxisScratch,
    part: &mut WlNetPart<'_>,
) {
    let (span, gx_out, gy_out, nt_out) = part;
    let pin_base = model.net_pin_start[span.start] as usize;
    for ni in span.clone() {
        let pins = model.net_pins(ni);
        let local = pins.start - pin_base..pins.end - pin_base;
        if pins.len() < 2 {
            nt_out[ni - span.start] = 0.0;
            for k in local {
                gx_out[k] = 0.0;
                gy_out[k] = 0.0;
            }
            continue;
        }
        ax.xs.clear();
        ax.ys.clear();
        let objs = &model.pin_obj[pins.clone()];
        let offx = &model.pin_off_x[pins.clone()];
        let offy = &model.pin_off_y[pins.clone()];
        for ((&o, &ox), &oy) in objs.iter().zip(offx).zip(offy) {
            if o == FIXED_PIN {
                ax.xs.push(ox);
                ax.ys.push(oy);
            } else {
                ax.xs.push(model.pos_x[o as usize] + ox);
                ax.ys.push(model.pos_y[o as usize] + oy);
            }
        }
        let weight = model.net_weight[ni];
        let gx = &mut gx_out[local.clone()];
        let gy = &mut gy_out[local];
        let (wx, wy) = match which {
            WirelengthModel::Lse => (
                lse_axis(&ax.xs, gamma, gx, &mut ax.ep, &mut ax.em),
                lse_axis(&ax.ys, gamma, gy, &mut ax.ep, &mut ax.em),
            ),
            WirelengthModel::Wa => (
                wa_axis(&ax.xs, gamma, gx, &mut ax.ep, &mut ax.em),
                wa_axis(&ax.ys, gamma, gy, &mut ax.ep, &mut ax.em),
            ),
        };
        nt_out[ni - span.start] = weight * (wx + wy);
        // Weight-scale the pin gradients in place, in pin order —
        // the same multiplications the historical kernel did when
        // building its contribution list.
        for (g, h) in gx.iter_mut().zip(gy.iter_mut()) {
            *g *= weight;
            *h *= weight;
        }
    }
}

/// Gather-phase body: accumulates one chunk of objects' gradients from the
/// per-pin gradients by walking the ascending-pin transpose. Shared by
/// [`smooth_wl_grad_par`] and the fused pass.
pub(crate) fn wl_obj_phase(
    model: &Model,
    pin_grad_x: &[f64],
    pin_grad_y: &[f64],
    part: &mut WlObjPart<'_>,
) {
    let (span, gx_out, gy_out) = part;
    for (j, o) in span.clone().enumerate() {
        let mut ax = gx_out[j];
        let mut ay = gy_out[j];
        for &k in model.obj_pins(o) {
            ax += pin_grad_x[k as usize];
            ay += pin_grad_y[k as usize];
        }
        gx_out[j] = ax;
        gy_out[j] = ay;
    }
}

/// Ordered total: nets in index order, skipping degenerate nets — the
/// exact sequence of additions the historical merge performed.
pub(crate) fn wl_ordered_total(model: &Model, net_total: &[f64]) -> f64 {
    let mut total = 0.0;
    for (ni, t) in net_total.iter().enumerate().take(model.num_nets()) {
        if model.net_degree(ni) >= 2 {
            total += t;
        }
    }
    total
}

/// Evaluates the smooth wirelength of `model` and **accumulates** its
/// gradient into `grad_x`/`grad_y` (one entry per object; caller zeroes),
/// using up to `par` worker threads.
///
/// Nets are partitioned into fixed-size chunks evaluated against the
/// immutable model; each chunk writes its per-pin gradients and per-net
/// totals into disjoint slices of `scratch`, the total is folded
/// sequentially in net order, and the per-object gather walks the
/// ascending-pin transpose — so the result is bitwise identical at every
/// thread count (and to the historical implementation, see
/// [`crate::reference`]).
///
/// Returns the total smooth wirelength (net-weight scaled).
///
/// # Panics
///
/// Panics if `grad_x.len() != model.len()` (or `grad_y`).
pub fn smooth_wl_grad_par(
    model: &Model,
    which: WirelengthModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
    scratch: &mut WlScratch,
    par: &Parallelism,
) -> f64 {
    assert_eq!(grad_x.len(), model.len(), "gradient buffer size mismatch");
    assert_eq!(grad_y.len(), model.len(), "gradient buffer size mismatch");
    debug_assert!(gamma > 0.0, "smoothing parameter γ must be positive, got {gamma}");
    scratch.prepare(model);

    // Phase 1: per-net evaluation into disjoint chunk slices. A chunk of
    // nets owns the contiguous pin range its nets cover.
    {
        let parts = scratch.net_parts(model);
        chunked_map_parts_with(par, parts, AxisScratch::default, |ax, _ci, part| {
            wl_net_phase(model, which, gamma, ax, part)
        });
    }

    let total = wl_ordered_total(model, scratch.net_totals());

    // Phase 2: per-object gather over the ascending-pin transpose. Each
    // object's additions happen in ascending pin index order — identical
    // to the historical net-then-pin scatter order restricted to that
    // object — and chunks write disjoint gradient ranges.
    {
        let (pin_grad_x, pin_grad_y) = scratch.pin_grads();
        let parts = scratch.obj_parts(grad_x, grad_y);
        chunked_map_parts_with(par, parts, || (), |(), _ci, part| {
            wl_obj_phase(model, pin_grad_x, pin_grad_y, part)
        });
    }
    total
}

/// Single-threaded [`smooth_wl_grad_par`] with throwaway scratch (the
/// historical entry point; tests and cold paths).
pub fn smooth_wl_grad(
    model: &Model,
    which: WirelengthModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) -> f64 {
    let mut scratch = WlScratch::new();
    smooth_wl_grad_par(model, which, gamma, grad_x, grad_y, &mut scratch, &Parallelism::single())
}

/// Evaluates the smooth wirelength only (no gradient) — used by the
/// discrete macro-orientation search.
pub fn smooth_wl(model: &Model, which: WirelengthModel, gamma: f64) -> f64 {
    let mut gx = vec![0.0; model.len()];
    let mut gy = vec![0.0; model.len()];
    smooth_wl_grad(model, which, gamma, &mut gx, &mut gy)
}

/// Whether a smooth-wirelength evaluation is numerically healthy: finite
/// objective and finite gradient in every component. The optimizer's
/// divergence detection — a `false` here is the recoverable `Diverged`
/// signal, not a panic (see [`crate::recovery`]).
pub fn all_finite(wl: f64, grad_x: &[f64], grad_y: &[f64]) -> bool {
    wl.is_finite()
        && grad_x.iter().all(|g| g.is_finite())
        && grad_y.iter().all(|g| g.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin, FIXED_PIN};
    use rdp_geom::{Point, Rect};

    fn toy_model(positions: &[(f64, f64)]) -> Model {
        let n = positions.len();
        Model::from_parts(
            positions.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            vec![(2.0, 10.0); n],
            vec![20.0; n],
            vec![false; n],
            vec![None; n],
            &[ModelNet {
                weight: 1.0,
                pins: (0..n).map(|i| ModelPin::movable(i, Point::ORIGIN)).collect(),
            }],
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        )
    }

    fn grad_of(model: &Model, which: WirelengthModel, gamma: f64) -> (Vec<f64>, Vec<f64>) {
        let mut gx = vec![0.0; model.len()];
        let mut gy = vec![0.0; model.len()];
        smooth_wl_grad(model, which, gamma, &mut gx, &mut gy);
        (gx, gy)
    }

    #[test]
    fn lse_overestimates_wa_underestimates() {
        let model = toy_model(&[(10.0, 10.0), (30.0, 25.0), (18.0, 40.0)]);
        let hpwl = model.hpwl();
        for gamma in [1.0, 4.0, 16.0] {
            let lse = smooth_wl(&model, WirelengthModel::Lse, gamma);
            let wa = smooth_wl(&model, WirelengthModel::Wa, gamma);
            assert!(lse >= hpwl - 1e-9, "LSE {lse} < HPWL {hpwl} at γ={gamma}");
            assert!(wa <= hpwl + 1e-9, "WA {wa} > HPWL {hpwl} at γ={gamma}");
        }
    }

    #[test]
    fn wa_is_tighter_than_lse_at_coarse_gamma() {
        // The WA model's advantage is its bounded error at coarse smoothing
        // (the regime early global placement runs in, γ of the order of the
        // pin spread); LSE's error grows like γ·ln(n) there. At γ much
        // smaller than the spread both models converge and LSE can be
        // pointwise tighter, so the comparison targets the coarse regime.
        let model = toy_model(&[(10.0, 10.0), (30.0, 25.0), (18.0, 40.0), (5.0, 33.0)]);
        let hpwl = model.hpwl();
        for gamma in [12.0, 20.0, 40.0] {
            let lse_err = (smooth_wl(&model, WirelengthModel::Lse, gamma) - hpwl).abs();
            let wa_err = (smooth_wl(&model, WirelengthModel::Wa, gamma) - hpwl).abs();
            assert!(
                wa_err < lse_err,
                "WA error {wa_err} not tighter than LSE {lse_err} at γ={gamma}"
            );
        }
    }

    #[test]
    fn both_converge_to_hpwl_as_gamma_shrinks() {
        let model = toy_model(&[(10.0, 10.0), (37.0, 22.0)]);
        let hpwl = model.hpwl();
        for which in [WirelengthModel::Lse, WirelengthModel::Wa] {
            let coarse = (smooth_wl(&model, which, 8.0) - hpwl).abs();
            let fine = (smooth_wl(&model, which, 0.25) - hpwl).abs();
            assert!(fine < coarse, "{which:?} did not tighten: {fine} vs {coarse}");
            assert!(fine < 0.5, "{which:?} still {fine} off at γ=0.25");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let model = toy_model(&[(10.0, 10.0), (30.0, 25.0), (18.0, 40.0)]);
        let gamma = 3.0;
        for which in [WirelengthModel::Lse, WirelengthModel::Wa] {
            let (gx, gy) = grad_of(&model, which, gamma);
            let h = 1e-5;
            for i in 0..model.len() {
                for axis in 0..2 {
                    let mut mp = model.clone();
                    let mut mm = model.clone();
                    if axis == 0 {
                        mp.pos_x[i] += h;
                        mm.pos_x[i] -= h;
                    } else {
                        mp.pos_y[i] += h;
                        mm.pos_y[i] -= h;
                    }
                    let fd = (smooth_wl(&mp, which, gamma) - smooth_wl(&mm, which, gamma)) / (2.0 * h);
                    let an = if axis == 0 { gx[i] } else { gy[i] };
                    assert!(
                        (fd - an).abs() < 1e-5 * (1.0 + fd.abs()),
                        "{which:?} obj {i} axis {axis}: fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn stability_at_tiny_gamma_and_large_coords() {
        // Without max-shift, e^{50000/0.01} overflows instantly.
        let model = toy_model(&[(50_000.0, 49_000.0), (49_000.0, 50_000.0)]);
        for which in [WirelengthModel::Lse, WirelengthModel::Wa] {
            let wl = smooth_wl(&model, which, 0.01);
            assert!(wl.is_finite(), "{which:?} overflowed");
            assert!((wl - model.hpwl()).abs() < 1.0);
            let (gx, gy) = grad_of(&model, which, 0.01);
            assert!(all_finite(wl, &gx, &gy), "{which:?} gradient overflowed");
        }
    }

    #[test]
    fn net_weight_scales_contribution() {
        let mut model = toy_model(&[(0.0, 0.0), (10.0, 0.0)]);
        let base = smooth_wl(&model, WirelengthModel::Wa, 1.0);
        model.net_weight[0] = 3.0;
        assert!((smooth_wl(&model, WirelengthModel::Wa, 1.0) - 3.0 * base).abs() < 1e-9);
    }

    #[test]
    fn fixed_pins_receive_no_gradient() {
        let model = Model::from_parts(
            vec![Point::new(10.0, 10.0)],
            vec![(2.0, 10.0)],
            vec![20.0],
            vec![false],
            vec![None],
            &[ModelNet {
                weight: 1.0,
                pins: vec![
                    ModelPin::movable(0, Point::ORIGIN),
                    ModelPin::fixed(Point::new(50.0, 50.0)),
                ],
            }],
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        );
        let (gx, gy) = grad_of(&model, WirelengthModel::Wa, 2.0);
        // The single movable pulls toward the anchor: the anchor is to the
        // upper right, so the gradient must point away from it (negative
        // components — descent along −grad moves toward the anchor).
        assert!(gx[0] < 0.0 && gy[0] < 0.0);
        // And the fixed pin contributed no transpose entry.
        assert_eq!(model.pin_obj[1], FIXED_PIN);
        assert_eq!(model.obj_pins(0), &[0]);
    }

    #[test]
    fn lane_folds_match_sequential() {
        for n in 0..20 {
            let v: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64 - 5.0) * 3.7).collect();
            if n == 0 {
                continue;
            }
            let smax = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let smin = v.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(fold_max(&v).to_bits(), smax.to_bits(), "n={n}");
            assert_eq!(fold_min(&v).to_bits(), smin.to_bits(), "n={n}");
        }
    }

    #[test]
    fn parallel_matches_single_thread_bitwise() {
        // Many nets of varying degree, some degenerate.
        let n = 200;
        let positions: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 7 % 83) as f64 + 0.25, (i * 13 % 97) as f64 + 0.5))
            .collect();
        let mut nets = Vec::new();
        for i in 0..n {
            let d = 2 + (i % 5);
            let pins = (0..d)
                .map(|j| ModelPin::movable((i + j * 17) % n, Point::new(j as f64 * 0.1, 0.0)))
                .collect();
            nets.push(ModelNet { weight: 1.0 + (i % 3) as f64, pins });
        }
        nets.push(ModelNet { weight: 5.0, pins: vec![ModelPin::movable(0, Point::ORIGIN)] });
        let model = Model::from_parts(
            positions,
            vec![(1.0, 1.0); n],
            vec![1.0; n],
            vec![false; n],
            vec![None; n],
            &nets,
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        );
        for which in [WirelengthModel::Lse, WirelengthModel::Wa] {
            let mut scratch = WlScratch::new();
            let mut base_gx = vec![0.0; n];
            let mut base_gy = vec![0.0; n];
            let base = smooth_wl_grad_par(
                &model, which, 2.0, &mut base_gx, &mut base_gy, &mut scratch,
                &Parallelism::single(),
            );
            for threads in [2, 8] {
                let mut gx = vec![0.0; n];
                let mut gy = vec![0.0; n];
                let wl = smooth_wl_grad_par(
                    &model, which, 2.0, &mut gx, &mut gy, &mut scratch,
                    &Parallelism::new(threads),
                );
                assert_eq!(wl.to_bits(), base.to_bits(), "{which:?} threads={threads}");
                for i in 0..n {
                    assert_eq!(gx[i].to_bits(), base_gx[i].to_bits(), "{which:?} t={threads} i={i}");
                    assert_eq!(gy[i].to_bits(), base_gy[i].to_bits(), "{which:?} t={threads} i={i}");
                }
            }
        }
    }
}
