//! Smooth wirelength models: log-sum-exp (LSE) and weighted-average (WA).
//!
//! Analytical placement needs a differentiable stand-in for HPWL. The
//! classic choice is LSE; the line of work this paper builds on introduced
//! the **weighted-average** model, which provably has a smaller modeling
//! error than LSE at the same smoothing parameter γ — that claim is
//! property-tested here and measured by experiment **T4**.
//!
//! Both models are implemented with max-shift exponent stabilization (the
//! "numerical stability scheme" of the WA paper): exponents are computed
//! relative to the per-net extreme coordinate, so γ can anneal to a small
//! fraction of a bin without overflow.
//!
//! The stabilization is *stateless*: the max/min anchor of every net is
//! re-derived from the current coordinates on each evaluation, never
//! cached. That is what makes divergence recovery sound — when the
//! optimizer restores a finite iterate after a blow-up, the very next
//! evaluation anchors its exponents to the restored (finite) extremes, so
//! no stale shift can re-poison the model. A non-finite result from these
//! functions is therefore a property of the *input iterate*, detectable
//! with [`all_finite`] and recoverable by restoring coordinates, not a
//! sticky internal state.

use crate::model::Model;
use rdp_geom::parallel::{chunk_spans, chunked_map, Parallelism};
use rdp_geom::Point;

/// Nets per parallel work chunk. Fixed (never derived from the thread
/// count) so chunk boundaries — and therefore the floating-point reduction
/// order — are identical at every parallelism level.
const NET_CHUNK: usize = 256;

/// Which smooth wirelength model the optimizer differentiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WirelengthModel {
    /// Log-sum-exp: `γ·ln Σ e^{x/γ} + γ·ln Σ e^{-x/γ}` (overestimates HPWL).
    Lse,
    /// Weighted-average: `Σx·e^{x/γ}/Σe^{x/γ} − Σx·e^{-x/γ}/Σe^{-x/γ}`
    /// (underestimates HPWL; tighter than LSE). The default.
    #[default]
    Wa,
}

/// One axis of one net, evaluated with the LSE model. Returns the smooth
/// span and writes `∂/∂coord` for each pin into `pin_grad`.
fn lse_axis(coords: &[f64], gamma: f64, pin_grad: &mut [f64]) -> f64 {
    let max = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = coords.iter().copied().fold(f64::INFINITY, f64::min);
    let mut s_max = 0.0;
    let mut s_min = 0.0;
    for &x in coords {
        s_max += ((x - max) / gamma).exp();
        s_min += ((min - x) / gamma).exp();
    }
    for (g, &x) in pin_grad.iter_mut().zip(coords) {
        *g = ((x - max) / gamma).exp() / s_max - ((min - x) / gamma).exp() / s_min;
    }
    gamma * s_max.ln() + max + gamma * s_min.ln() - min
}

/// One axis of one net with the WA model.
fn wa_axis(coords: &[f64], gamma: f64, pin_grad: &mut [f64]) -> f64 {
    let max = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = coords.iter().copied().fold(f64::INFINITY, f64::min);
    let (mut s_p, mut t_p, mut s_m, mut t_m) = (0.0, 0.0, 0.0, 0.0);
    for &x in coords {
        let ep = ((x - max) / gamma).exp();
        let em = ((min - x) / gamma).exp();
        s_p += ep;
        t_p += x * ep;
        s_m += em;
        t_m += x * em;
    }
    let f_max = t_p / s_p;
    let f_min = t_m / s_m;
    for (g, &x) in pin_grad.iter_mut().zip(coords) {
        let ep = ((x - max) / gamma).exp();
        let em = ((min - x) / gamma).exp();
        let d_max = ep / s_p * (1.0 + (x - f_max) / gamma);
        let d_min = em / s_m * (1.0 - (x - f_min) / gamma);
        *g = d_max - d_min;
    }
    f_max - f_min
}

/// One chunk's partial evaluation: per-net smooth spans (in net order) and
/// the sparse pin-gradient contributions (in net-then-pin order).
struct ChunkPartial {
    /// `weight · (wx + wy)` for every ≥2-pin net in the chunk, net order.
    net_totals: Vec<f64>,
    /// `(object, ∂x, ∂y)` contributions in net-then-pin order.
    contribs: Vec<(u32, f64, f64)>,
}

/// Evaluates the nets in `span` against an immutable model snapshot.
fn eval_net_span(
    model: &Model,
    which: WirelengthModel,
    gamma: f64,
    span: std::ops::Range<usize>,
) -> ChunkPartial {
    let mut out = ChunkPartial {
        net_totals: Vec::with_capacity(span.len()),
        contribs: Vec::new(),
    };
    let mut xs: Vec<f64> = Vec::with_capacity(16);
    let mut ys: Vec<f64> = Vec::with_capacity(16);
    let mut gx: Vec<f64> = Vec::with_capacity(16);
    let mut gy: Vec<f64> = Vec::with_capacity(16);
    for net in &model.nets[span] {
        if net.pins.len() < 2 {
            continue;
        }
        xs.clear();
        ys.clear();
        for p in &net.pins {
            let pos = p.position(&model.pos);
            xs.push(pos.x);
            ys.push(pos.y);
        }
        gx.resize(xs.len(), 0.0);
        gy.resize(ys.len(), 0.0);
        let (wx, wy) = match which {
            WirelengthModel::Lse => (
                lse_axis(&xs, gamma, &mut gx),
                lse_axis(&ys, gamma, &mut gy),
            ),
            WirelengthModel::Wa => (
                wa_axis(&xs, gamma, &mut gx),
                wa_axis(&ys, gamma, &mut gy),
            ),
        };
        out.net_totals.push(net.weight * (wx + wy));
        for (k, p) in net.pins.iter().enumerate() {
            if let Some(o) = p.obj {
                out.contribs.push((o, net.weight * gx[k], net.weight * gy[k]));
            }
        }
    }
    out
}

/// Evaluates the smooth wirelength of `model` and **accumulates** its
/// gradient into `grad` (one entry per object; caller zeroes), using up to
/// `par` worker threads.
///
/// Nets are partitioned into fixed-size chunks evaluated against the
/// immutable model; each chunk's partial totals and pin-gradient
/// contributions are merged back **in net order**, so the result is bitwise
/// identical at every thread count (and to the historical sequential
/// implementation).
///
/// Returns the total smooth wirelength (net-weight scaled).
///
/// # Panics
///
/// Panics if `grad.len() != model.len()`.
pub fn smooth_wl_grad_par(
    model: &Model,
    which: WirelengthModel,
    gamma: f64,
    grad: &mut [Point],
    par: Parallelism,
) -> f64 {
    assert_eq!(grad.len(), model.len(), "gradient buffer size mismatch");
    debug_assert!(gamma > 0.0, "smoothing parameter γ must be positive, got {gamma}");
    let spans: Vec<_> = chunk_spans(model.nets.len(), NET_CHUNK).collect();
    let partials = chunked_map(par, spans.len(), |ci| {
        eval_net_span(model, which, gamma, spans[ci].clone())
    });
    // Ordered reduction: chunks in index order, nets in order within each.
    let mut total = 0.0;
    for part in &partials {
        for &t in &part.net_totals {
            total += t;
        }
        for &(o, dx, dy) in &part.contribs {
            let g = &mut grad[o as usize];
            g.x += dx;
            g.y += dy;
        }
    }
    total
}

/// Single-threaded [`smooth_wl_grad_par`] (the historical entry point).
pub fn smooth_wl_grad(
    model: &Model,
    which: WirelengthModel,
    gamma: f64,
    grad: &mut [Point],
) -> f64 {
    smooth_wl_grad_par(model, which, gamma, grad, Parallelism::single())
}

/// Evaluates the smooth wirelength only (no gradient) — used by the
/// discrete macro-orientation search.
pub fn smooth_wl(model: &Model, which: WirelengthModel, gamma: f64) -> f64 {
    let mut scratch = vec![Point::ORIGIN; model.len()];
    smooth_wl_grad(model, which, gamma, &mut scratch)
}

/// Whether a smooth-wirelength evaluation is numerically healthy: finite
/// objective and finite gradient in every component. The optimizer's
/// divergence detection — a `false` here is the recoverable `Diverged`
/// signal, not a panic (see [`crate::recovery`]).
pub fn all_finite(wl: f64, grad: &[Point]) -> bool {
    wl.is_finite() && grad.iter().all(|g| g.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelNet, ModelPin};
    use rdp_geom::Rect;

    fn toy_model(positions: &[(f64, f64)]) -> Model {
        let n = positions.len();
        Model {
            pos: positions.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            size: vec![(2.0, 10.0); n],
            area: vec![20.0; n],
            is_macro: vec![false; n],
            region: vec![None; n],
            nets: vec![ModelNet {
                weight: 1.0,
                pins: (0..n).map(|i| ModelPin::movable(i, Point::ORIGIN)).collect(),
            }],
            die: Rect::new(0.0, 0.0, 100.0, 100.0),
            node_of: vec![],
        }
    }

    #[test]
    fn lse_overestimates_wa_underestimates() {
        let model = toy_model(&[(10.0, 10.0), (30.0, 25.0), (18.0, 40.0)]);
        let hpwl = model.hpwl();
        for gamma in [1.0, 4.0, 16.0] {
            let lse = smooth_wl(&model, WirelengthModel::Lse, gamma);
            let wa = smooth_wl(&model, WirelengthModel::Wa, gamma);
            assert!(lse >= hpwl - 1e-9, "LSE {lse} < HPWL {hpwl} at γ={gamma}");
            assert!(wa <= hpwl + 1e-9, "WA {wa} > HPWL {hpwl} at γ={gamma}");
        }
    }

    #[test]
    fn wa_is_tighter_than_lse_at_coarse_gamma() {
        // The WA model's advantage is its bounded error at coarse smoothing
        // (the regime early global placement runs in, γ of the order of the
        // pin spread); LSE's error grows like γ·ln(n) there. At γ much
        // smaller than the spread both models converge and LSE can be
        // pointwise tighter, so the comparison targets the coarse regime.
        let model = toy_model(&[(10.0, 10.0), (30.0, 25.0), (18.0, 40.0), (5.0, 33.0)]);
        let hpwl = model.hpwl();
        for gamma in [12.0, 20.0, 40.0] {
            let lse_err = (smooth_wl(&model, WirelengthModel::Lse, gamma) - hpwl).abs();
            let wa_err = (smooth_wl(&model, WirelengthModel::Wa, gamma) - hpwl).abs();
            assert!(
                wa_err < lse_err,
                "WA error {wa_err} not tighter than LSE {lse_err} at γ={gamma}"
            );
        }
    }

    #[test]
    fn both_converge_to_hpwl_as_gamma_shrinks() {
        let model = toy_model(&[(10.0, 10.0), (37.0, 22.0)]);
        let hpwl = model.hpwl();
        for which in [WirelengthModel::Lse, WirelengthModel::Wa] {
            let coarse = (smooth_wl(&model, which, 8.0) - hpwl).abs();
            let fine = (smooth_wl(&model, which, 0.25) - hpwl).abs();
            assert!(fine < coarse, "{which:?} did not tighten: {fine} vs {coarse}");
            assert!(fine < 0.5, "{which:?} still {fine} off at γ=0.25");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let model = toy_model(&[(10.0, 10.0), (30.0, 25.0), (18.0, 40.0)]);
        let gamma = 3.0;
        for which in [WirelengthModel::Lse, WirelengthModel::Wa] {
            let mut grad = vec![Point::ORIGIN; model.len()];
            smooth_wl_grad(&model, which, gamma, &mut grad);
            let h = 1e-5;
            #[allow(clippy::needless_range_loop)]
            for i in 0..model.len() {
                for axis in 0..2 {
                    let mut mp = model.clone();
                    let mut mm = model.clone();
                    if axis == 0 {
                        mp.pos[i].x += h;
                        mm.pos[i].x -= h;
                    } else {
                        mp.pos[i].y += h;
                        mm.pos[i].y -= h;
                    }
                    let fd = (smooth_wl(&mp, which, gamma) - smooth_wl(&mm, which, gamma)) / (2.0 * h);
                    let an = if axis == 0 { grad[i].x } else { grad[i].y };
                    assert!(
                        (fd - an).abs() < 1e-5 * (1.0 + fd.abs()),
                        "{which:?} obj {i} axis {axis}: fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn stability_at_tiny_gamma_and_large_coords() {
        // Without max-shift, e^{50000/0.01} overflows instantly.
        let model = toy_model(&[(50_000.0, 49_000.0), (49_000.0, 50_000.0)]);
        for which in [WirelengthModel::Lse, WirelengthModel::Wa] {
            let wl = smooth_wl(&model, which, 0.01);
            assert!(wl.is_finite(), "{which:?} overflowed");
            assert!((wl - model.hpwl()).abs() < 1.0);
            let mut grad = vec![Point::ORIGIN; model.len()];
            smooth_wl_grad(&model, which, 0.01, &mut grad);
            assert!(grad.iter().all(|g| g.is_finite()), "{which:?} gradient overflowed");
        }
    }

    #[test]
    fn net_weight_scales_contribution() {
        let mut model = toy_model(&[(0.0, 0.0), (10.0, 0.0)]);
        let base = smooth_wl(&model, WirelengthModel::Wa, 1.0);
        model.nets[0].weight = 3.0;
        assert!((smooth_wl(&model, WirelengthModel::Wa, 1.0) - 3.0 * base).abs() < 1e-9);
    }

    #[test]
    fn fixed_pins_receive_no_gradient() {
        let mut model = toy_model(&[(10.0, 10.0)]);
        model.nets[0].pins = vec![
            ModelPin::movable(0, Point::ORIGIN),
            ModelPin::fixed(Point::new(50.0, 50.0)),
        ];
        let mut grad = vec![Point::ORIGIN; 1];
        smooth_wl_grad(&model, WirelengthModel::Wa, 2.0, &mut grad);
        // The single movable pulls toward the anchor: negative-x gradient
        // means moving +x reduces WL... sign check: objective decreases when
        // moving along -grad; anchor is to the upper right, so grad must
        // point away from it (negative direction components).
        assert!(grad[0].x < 0.0 && grad[0].y < 0.0);
    }
}
