#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — the
# workspace has zero external dependencies (see README "Offline builds").
#
# Usage: scripts/ci.sh [--full|--faults|--chaos]
#   --full    also exercise the feature-gated targets: property-tests
#             (larger randomized-test case counts), the bench binaries and
#             the full chaos batch (two mid-batch server kills).
#   --faults  also run the fault-injection resilience suite (rdp-core with
#             the `fault-inject` feature; the 1/2/8-thread invariance sweep
#             happens inside the tests themselves).
#   --chaos   also run the full rdp-serve suite with the `chaos` feature
#             (service-level fault injection against the job server).
#
# The default gate already includes the chaos *smoke* batch (one server
# kill mid-batch): it is the acceptance bar for the serve layer.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --workspace
run cargo test --workspace -q
run cargo clippy --workspace --all-targets -- -D warnings
# Fused-gradient regression gate: compare the smoke sweep against a
# recorded baseline (default: the checked-in BENCH_scale.json). bench_scale
# exits non-zero when the fused pass regresses >15% at equal thread count;
# baselines from a different thread count are skipped with a notice.
BENCH_SCALE_BASELINE="${BENCH_SCALE_BASELINE:-BENCH_scale.json}" \
  run cargo run --release -p rdp-bench --bin bench_scale -- --smoke
# Solver A/B gate: CG+bell and Nesterov+electrostatic must both reach a
# fully legal placement on a small design.
run cargo run --release -p rdp-bench --bin bench_solver_ab -- --smoke
# Estimator-ladder smoke: learned-tier thread invariance, the accuracy
# gate of the checked-in weights on a fresh design (rank correlations vs
# the routed truth must clear the gates stamped into the weight file),
# per-round tier costs at 10k cells and the prob-vs-auto flow A/B.
run cargo run --release -p rdp-bench --bin bench_estimator -- --smoke
# Service-level chaos smoke: seeded worker panics, NaN gradients, budget
# exhaustion and one mid-batch server kill across concurrent jobs; every
# job must land terminal with placements bitwise identical to a serial
# one-job-at-a-time run.
run cargo test -p rdp-serve --features chaos -q --test chaos

if [[ "${1:-}" == "--chaos" ]]; then
  run cargo test -p rdp-serve --features chaos -q
  run cargo clippy -p rdp-serve --all-targets --features chaos -- -D warnings
fi

if [[ "${1:-}" == "--faults" ]]; then
  run cargo test -p rdp-core --features fault-inject -q
  run cargo clippy -p rdp-core --all-targets --features fault-inject -- -D warnings
fi

if [[ "${1:-}" == "--full" ]]; then
  run cargo test --workspace -q --features rdp/property-tests,rdp-db/property-tests,rdp-route/property-tests
  run cargo build --workspace --benches --features rdp-bench/bench
  run cargo clippy --workspace --all-targets --features rdp-bench/bench -- -D warnings
  run cargo run --release -p rdp-bench --bin bench_router -- --smoke
  run cargo run --release -p rdp-bench --bin bench_incremental -- --smoke
  run cargo run --release -p rdp-bench --bin bench_route3d -- --smoke
  # Learned-estimator reproducibility: retraining from the fixed seed must
  # reproduce the checked-in weight file byte for byte.
  run cargo run --release -- train-estimator --check
  # Full estimator ladder bench: adds the 100k-cell per-round sweep and
  # the learned >= 3x-vs-incremental-router assertion.
  run cargo run --release -p rdp-bench --bin bench_estimator
  # All four solver × density-model combinations on the larger design.
  run cargo run --release -p rdp-bench --bin bench_solver_ab
  # Full 10k→1M scaling sweep (including the 100k-cell CG-vs-Nesterov
  # solver A/B) and the 100k-cell thread-invariance case (release build:
  # the debug gate would take hours at this size).
  run cargo run --release -p rdp-bench --bin bench_scale
  run cargo test --release -q --test determinism -- --ignored
  # Full chaos batch: twelve faulted jobs, two mid-batch server kills.
  run cargo test -p rdp-serve --features chaos -q --test chaos -- --ignored
  # Surface degraded-parallelism runs loudly: a true flag means the host
  # ran every parallel kernel inline (1 effective thread), so the recorded
  # timings demonstrate no multi-thread speedup.
  for f in BENCH_scale.json target/experiments/BENCH_scale.json target/experiments/BENCH_parallel.json; do
    if [[ -f "$f" ]] && grep -q '"degraded_parallelism": true' "$f"; then
      echo "WARNING: $f was recorded with degraded parallelism (effective_threads() == 1)" >&2
    fi
  done
fi

echo "ci: OK"
