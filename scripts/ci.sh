#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — the
# workspace has zero external dependencies (see README "Offline builds").
#
# Usage: scripts/ci.sh [--full]
#   --full  also exercise the feature-gated targets: property-tests
#           (larger randomized-test case counts) and the bench binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --workspace
run cargo test --workspace -q
run cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "--full" ]]; then
  run cargo test --workspace -q --features rdp/property-tests,rdp-db/property-tests,rdp-route/property-tests
  run cargo build --workspace --benches --features rdp-bench/bench
  run cargo clippy --workspace --all-targets --features rdp-bench/bench -- -D warnings
  run cargo run --release -p rdp-bench --bin bench_router -- --smoke
  run cargo run --release -p rdp-bench --bin bench_incremental -- --smoke
fi

echo "ci: OK"
