//! Congestion rescue: a routing-supply-starved design placed twice — once
//! wirelength-driven, once with the routability loop — with before/after
//! ASCII congestion maps. This is the paper's headline mechanism made
//! visible.
//!
//! Run: `cargo run --release --example congestion_rescue`

use rdp::gen::{generate, GeneratorConfig};
use rdp::place::{PlaceOptions, Placer};
use rdp::route::{heatmap, GlobalRouter, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tight supply: 18 tracks per gcell edge instead of the default 28.
    let mut cfg = GeneratorConfig::small("rescue", 99);
    cfg.route.tracks_per_edge_h = 18.0;
    cfg.route.tracks_per_edge_v = 18.0;
    let bench = generate(&cfg)?;

    for (label, options) in [
        ("wirelength-driven (B1)", PlaceOptions::fast().wirelength_driven()),
        ("routability-driven (ours)", PlaceOptions::fast()),
    ] {
        let result = Placer::new(&bench.design, options)
            .with_initial(bench.placement.clone())
            .run()?;
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(&bench.design, &result.placement);
        println!(
            "\n=== {label} ===\nHPWL {:.0}   RC {:.1}%   overflow {:.0} tracks   \
             scaled HPWL {:.0}",
            result.hpwl,
            routed.metrics.rc,
            routed.metrics.total_overflow,
            result.hpwl * routed.metrics.penalty_factor(),
        );
        println!("{}", heatmap::to_ascii(&routed.grid));
    }
    println!("legend: . <50%   - <80%   o <100%   x <150%   X >=150% of edge capacity");
    Ok(())
}
