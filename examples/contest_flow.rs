//! Contest flow: the full DAC-2012-style tool chain over Bookshelf files —
//! write a benchmark to disk, read it back like a contest placer would,
//! place, legalize, write the result `.pl`, and score it with the routing
//! oracle.
//!
//! Run: `cargo run --release --example contest_flow`

use rdp::db::bookshelf;
use rdp::eval::score_placement;
use rdp::gen::{generate, GeneratorConfig};
use rdp::place::{PlaceOptions, Placer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("rdp_contest_flow");

    // 1. Emit the benchmark as a Bookshelf directory (.aux/.nodes/...).
    let bench = generate(&GeneratorConfig::small("contest", 2012))?;
    bookshelf::write_design(&bench.design, &bench.placement, &dir)?;
    println!("benchmark at {}", dir.join("contest.aux").display());

    // 2. Read it back — this is the path an external design would take.
    let (design, initial) = bookshelf::read_design(dir.join("contest.aux"))?;
    println!("loaded: {}", rdp::db::stats::DesignStats::of(&design));

    // 3. Place.
    let result = Placer::new(&design, PlaceOptions::fast())
        .with_initial(initial)
        .run()?;

    // 4. Write the solution `.pl` next to the benchmark (the contest
    //    deliverable) by re-emitting the whole design with final positions.
    let out = dir.join("solution");
    bookshelf::write_design(&design, &result.placement, &out)?;
    println!("solution at {}", out.join("contest.pl").display());

    // 5. Official-style scoring.
    let score = score_placement(&design, &result.placement);
    println!(
        "HPWL {:.0}   RC {:.1}%   scaled HPWL {:.0}   (routed in {:.2}s)",
        score.hpwl,
        score.rc,
        score.scaled_hpwl,
        score.route_time.as_secs_f64()
    );
    Ok(())
}
