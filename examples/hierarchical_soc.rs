//! Hierarchical SoC scenario: a design whose module subcircuits are pinned
//! to fence regions (the paper's hierarchical mixed-size case). Compares
//! the hierarchy-aware flow against a fence-blind baseline and shows why
//! the fences must be honored *during* global placement, not only at
//! legalization.
//!
//! Run: `cargo run --release --example hierarchical_soc`

use rdp::db::validate::check_legal;
use rdp::gen::{generate, GeneratorConfig};
use rdp::place::{PlaceOptions, Placer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2k-cell design with 3 exclusive fence regions hosting the three
    // largest modules.
    let bench = generate(&GeneratorConfig::hierarchical("soc", 7, 3))?;
    println!("{}", rdp::db::stats::DesignStats::of(&bench.design));
    for region in bench.design.regions() {
        println!(
            "  fence `{}`: {:.0} area over {} rect(s)",
            region.name(),
            region.area(),
            region.rects().len()
        );
    }

    let movers = bench.design.movable_ids().count() as f64;
    for (label, options) in [
        ("hierarchy-aware (ours)", PlaceOptions::fast()),
        ("fence-blind GP (B2)", PlaceOptions::fast().fence_blind()),
    ] {
        let result = Placer::new(&bench.design, options)
            .with_initial(bench.placement.clone())
            .run()?;
        let report = check_legal(&bench.design, &result.placement, 10);
        println!(
            "{label:>24}: HPWL {:>10.0}  avg legalization displacement {:>7.2}  \
             fence violations after legalization: {}",
            result.hpwl,
            result.legalize.total_displacement / movers,
            report.fence_violations,
        );
    }
    println!(
        "\nBoth flows end fence-clean (the legalizer enforces fences), but the\n\
         fence-blind flow pays for it with displacement and wirelength — the\n\
         effect the paper's hierarchical experiments quantify."
    );
    Ok(())
}
