//! Mixed-size ASIC scenario: a macro-heavy design (35% of movable area in
//! blocks) where macro rotation and flipping matter. Shows the orientation
//! distribution the optimizer picks and the ablation cost of disabling it.
//!
//! Run: `cargo run --release --example mixed_size_asic`

use rdp::gen::{generate, GeneratorConfig};
use rdp::place::{PlaceOptions, Placer};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = GeneratorConfig::small("asic", 13);
    cfg.num_macros = 10;
    cfg.macro_area_share = 0.35;
    let bench = generate(&cfg)?;
    println!("{}", rdp::db::stats::DesignStats::of(&bench.design));

    for (label, options) in [
        ("with macro rotation", PlaceOptions::fast()),
        ("without (T5 ablation)", PlaceOptions::fast().without_rotation()),
    ] {
        let result = Placer::new(&bench.design, options)
            .with_initial(bench.placement.clone())
            .run()?;
        let mut orients: BTreeMap<String, usize> = BTreeMap::new();
        for id in bench.design.macro_ids() {
            *orients
                .entry(result.placement.orient(id).to_string())
                .or_insert(0) += 1;
        }
        let dist: Vec<String> = orients.iter().map(|(o, n)| format!("{o}x{n}")).collect();
        println!(
            "{label:>22}: HPWL {:>10.0}   macro orientations: {}",
            result.hpwl,
            dist.join(" ")
        );
    }

    println!(
        "\nEvery macro outline stays row/site aligned and overlap-free after\n\
         legalization; rotation freedom lets connected pins face their nets."
    );
    Ok(())
}
