//! Quickstart: generate a small mixed-size design, place it with the full
//! routability-driven flow, and print the score card.
//!
//! Run: `cargo run --release --example quickstart`

use rdp::eval::score_placement;
use rdp::gen::{generate, GeneratorConfig};
use rdp::place::{PlaceOptions, Placer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 2k-cell mixed-size benchmark (4 macros, fixed blocks, I/O,
    //    routing supply), deterministic in the seed.
    let bench = generate(&GeneratorConfig::small("quickstart", 42))?;
    println!("{}", rdp::db::stats::DesignStats::of(&bench.design));

    // 2. Place: multilevel analytical global placement, macro rotation,
    //    congestion-driven inflation, legalization, detailed placement.
    let result = Placer::new(&bench.design, PlaceOptions::fast())
        .with_initial(bench.placement.clone())
        .run()?;
    println!(
        "placed in {:.1}s — HPWL {:.0}, legalization moved cells by {:.1} on average",
        result.elapsed.as_secs_f64(),
        result.hpwl,
        result.legalize.total_displacement / bench.design.movable_ids().count() as f64,
    );

    // 3. Score with the DAC-2012 protocol: global-route, ACE/RC, scaled HPWL.
    let score = score_placement(&bench.design, &result.placement);
    println!(
        "RC = {:.1}%  (ACE {:.0}/{:.0}/{:.0}/{:.0})  scaled HPWL = {:.0}",
        score.rc,
        score.congestion.ace[0],
        score.congestion.ace[1],
        score.congestion.ace[2],
        score.congestion.ace[3],
        score.scaled_hpwl
    );

    // 4. Check legality like the contest evaluator would.
    let report = rdp::db::validate::check_legal(&bench.design, &result.placement, 10);
    println!("legal: {}", report.is_legal());

    // 5. Persist as a Bookshelf benchmark directory.
    let out = std::env::temp_dir().join("rdp_quickstart");
    rdp::db::bookshelf::write_design(&bench.design, &result.placement, &out)?;
    println!("wrote Bookshelf files to {}", out.display());
    Ok(())
}
