#!/bin/bash
set -u
cd /root/repo
echo "=== table3_hierarchical (full) ==="
./target/release/table3_hierarchical || echo FAILED
for bin in table4_wirelength_ablation table5_component_ablation fig_congestion_map fig_convergence fig_inflation_sweep fig_runtime_breakdown fig_density_sweep; do
  echo "=== $bin (smoke) ==="
  ./target/release/$bin --smoke || echo FAILED
done
echo "=== phase2 done ==="
