#!/bin/bash
# Regenerates every table and figure of EXPERIMENTS.md (full-size suite).
set -u
cd /root/repo
mkdir -p target/experiments
for bin in table1_suite table2_dac2012 table3_hierarchical table4_wirelength_ablation \
           table5_component_ablation fig_congestion_map fig_convergence \
           fig_inflation_sweep fig_runtime_breakdown fig_density_sweep; do
  echo "=== $bin ==="
  ./target/release/$bin || echo "FAILED: $bin"
done
echo "=== all experiments done ==="
