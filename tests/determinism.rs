//! Determinism regression tests for the parallel execution layer: the
//! placer and the router must produce **bitwise identical** results at
//! every thread count (1, 2, 8). The chunked kernels merge their partial
//! results in a canonical order precisely so this holds — these tests are
//! the contract.

use rdp::gen::{generate, GeneratorConfig};
use rdp::geom::parallel::Parallelism;
use rdp::place::{PlaceOptions, Placer};
use rdp::route::{GlobalRouter, RouterConfig};

#[test]
fn placer_is_bitwise_identical_across_thread_counts() {
    let bench = generate(&GeneratorConfig::tiny("det-par", 77)).unwrap();
    let run = |threads: usize| {
        Placer::new(&bench.design, PlaceOptions::fast().with_threads(threads))
            .with_initial(bench.placement.clone())
            .run()
            .unwrap()
    };
    let base = run(1);
    for threads in [2, 8] {
        let r = run(threads);
        assert_eq!(
            base.hpwl.to_bits(),
            r.hpwl.to_bits(),
            "HPWL differs at {threads} threads: {} vs {}",
            base.hpwl,
            r.hpwl
        );
        assert_eq!(
            base.gp.overflow_ratio.to_bits(),
            r.gp.overflow_ratio.to_bits(),
            "overflow differs at {threads} threads"
        );
        for id in bench.design.node_ids() {
            let a = base.placement.center(id);
            let b = r.placement.center(id);
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits()),
                (b.x.to_bits(), b.y.to_bits()),
                "position of node {id:?} differs at {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn nesterov_electrostatic_placer_is_bitwise_identical_across_thread_counts() {
    use rdp::place::{GpDensityModel, GpSolver};
    let bench = generate(&GeneratorConfig::tiny("det-nes", 81)).unwrap();
    let run = |threads: usize| {
        Placer::new(
            &bench.design,
            PlaceOptions::fast()
                .with_threads(threads)
                .with_solver(GpSolver::Nesterov, GpDensityModel::Electrostatic),
        )
        .with_initial(bench.placement.clone())
        .run()
        .unwrap()
    };
    let base = run(1);
    for threads in [2, 8] {
        let r = run(threads);
        assert_eq!(
            base.hpwl.to_bits(),
            r.hpwl.to_bits(),
            "HPWL differs at {threads} threads: {} vs {}",
            base.hpwl,
            r.hpwl
        );
        assert_eq!(
            base.gp.overflow_ratio.to_bits(),
            r.gp.overflow_ratio.to_bits(),
            "overflow differs at {threads} threads"
        );
        assert_eq!(
            base.gp.gradient_evals, r.gp.gradient_evals,
            "gradient evaluation count differs at {threads} threads"
        );
        for id in bench.design.node_ids() {
            let a = base.placement.center(id);
            let b = r.placement.center(id);
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits()),
                (b.x.to_bits(), b.y.to_bits()),
                "position of node {id:?} differs at {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn router_is_bitwise_identical_across_thread_counts_and_windows() {
    let bench = generate(&GeneratorConfig::tiny("det-rt", 78)).unwrap();
    let run = |threads: usize, window_margin: Option<u32>| {
        GlobalRouter::new(
            RouterConfig::builder()
                .threads(threads)
                .window_margin(window_margin)
                .build(),
        )
        .route(&bench.design, &bench.placement)
    };
    // Baseline: single-threaded, unbounded search. Every thread count and
    // every window margin must reproduce it bit for bit — the windowed A*
    // only accepts a result when its cost certifies equivalence with the
    // unbounded search.
    let base = run(1, None);
    for threads in [1, 2, 8] {
        for margin in [None, Some(0), Some(4), Some(8)] {
            if threads == 1 && margin.is_none() {
                continue;
            }
            let r = run(threads, margin);
            let label = format!("{threads} threads, margin {margin:?}");
            assert_eq!(base.num_segments, r.num_segments, "{label}");
            assert_eq!(base.iterations, r.iterations, "{label}");
            assert_eq!(base.net_lengths, r.net_lengths, "{label}");
            assert_eq!(
                base.metrics.rc.to_bits(),
                r.metrics.rc.to_bits(),
                "rc differs at {label}"
            );
            assert_eq!(
                base.metrics.total_overflow.to_bits(),
                r.metrics.total_overflow.to_bits(),
                "overflow differs at {label}"
            );
            assert_eq!(
                base.metrics.total_usage.to_bits(),
                r.metrics.total_usage.to_bits(),
                "usage differs at {label}"
            );
            for (a, b) in base.grid.edge_ids().zip(r.grid.edge_ids()) {
                assert_eq!(
                    base.grid.usage(a).to_bits(),
                    r.grid.usage(b).to_bits(),
                    "edge usage differs at {label}"
                );
                assert_eq!(
                    base.grid.history(a).to_bits(),
                    r.grid.history(b).to_bits(),
                    "edge history differs at {label}"
                );
            }
        }
    }
}

/// Kernel-level invariance at production scale: the wirelength and density
/// gradient kernels on a 100k-cell design must be bitwise identical at
/// 1, 2 and 8 threads. Too slow for the debug-build default gate — run in
/// release via `ci.sh --full` (`cargo test --release -- --ignored`).
#[test]
#[ignore = "100k-cell release-build case; run via ci.sh --full"]
fn kernels_are_bitwise_identical_across_thread_counts_at_100k_cells() {
    use rdp::place::density::build_fields;
    use rdp::place::electrostatics::build_electro_fields;
    use rdp::place::model::Model;
    use rdp::place::wirelength::{smooth_wl_grad_par, WirelengthModel, WlScratch};

    let mut cfg = GeneratorConfig::large("det-100k", 80);
    cfg.num_cells = 100_000;
    let bench = generate(&cfg).unwrap();
    let model = Model::from_design(&bench.design, &bench.placement);
    let bins = ((model.len() as f64).sqrt().ceil() as usize).clamp(16, 256);
    let mut fields = build_fields(&model, &[], &[], bins, 0.9);
    let mut electro = build_electro_fields(&model, &[], &[], bins, 0.9);
    let mut scratch = WlScratch::new();

    let mut run = |threads: usize| {
        let par = Parallelism::new(threads);
        let mut gx = vec![0.0; model.len()];
        let mut gy = vec![0.0; model.len()];
        let wl = smooth_wl_grad_par(
            &model,
            WirelengthModel::Wa,
            20.0,
            &mut gx,
            &mut gy,
            &mut scratch,
            &par,
        );
        let stats = fields[0].penalty_grad_par(&model, &mut gx, &mut gy, &par);
        let estats = electro[0].penalty_grad_par(&model, &mut gx, &mut gy, &par);
        let bits: Vec<(u64, u64)> =
            gx.iter().zip(&gy).map(|(x, y)| (x.to_bits(), y.to_bits())).collect();
        (wl.to_bits(), stats.penalty.to_bits(), estats.penalty.to_bits(), bits)
    };

    let base = run(1);
    for threads in [2, 8] {
        let r = run(threads);
        assert_eq!(base.0, r.0, "wirelength total differs at {threads} threads");
        assert_eq!(base.1, r.1, "density penalty differs at {threads} threads");
        assert_eq!(base.2, r.2, "electrostatic penalty differs at {threads} threads");
        assert_eq!(base.3, r.3, "a gradient component differs at {threads} threads");
    }
}

#[test]
fn congestion_estimator_is_bitwise_identical_across_thread_counts() {
    let bench = generate(&GeneratorConfig::tiny("det-est", 79)).unwrap();
    let base = rdp::route::pattern::estimate_congestion_par(
        &bench.design,
        &bench.placement,
        &Parallelism::single(),
    );
    for threads in [2, 8] {
        let g = rdp::route::pattern::estimate_congestion_par(
            &bench.design,
            &bench.placement,
            &Parallelism::new(threads),
        );
        for (a, b) in base.edge_ids().zip(g.edge_ids()) {
            assert_eq!(
                base.usage(a).to_bits(),
                g.usage(b).to_bits(),
                "estimated usage differs at {threads} threads"
            );
        }
    }
}

/// A persistent worker pool must be a pure execution vehicle: running the
/// same kernel sequence repeatedly through one reused pool yields exactly
/// the bits of a fresh-scope (no-pool) run at the same thread count — and
/// keeps doing so after a worker panic is caught and the pool recovers.
#[test]
fn reused_pool_matches_fresh_scope_bitwise() {
    use rdp::place::density::build_fields;
    use rdp::place::electrostatics::build_electro_fields;
    use rdp::place::model::Model;
    use rdp::place::wirelength::{smooth_wl_grad_par, WirelengthModel, WlScratch};

    let bench = generate(&GeneratorConfig::tiny("det-pool", 81)).unwrap();
    let model = Model::from_design(&bench.design, &bench.placement);
    let bins = ((model.len() as f64).sqrt().ceil() as usize).clamp(16, 256);
    let mut fields = build_fields(&model, &[], &[], bins, 0.9);
    let mut electro = build_electro_fields(&model, &[], &[], bins, 0.9);
    let mut scratch = WlScratch::new();

    let mut sequence = |par: &Parallelism| {
        let mut gx = vec![0.0; model.len()];
        let mut gy = vec![0.0; model.len()];
        let wl = smooth_wl_grad_par(
            &model,
            WirelengthModel::Wa,
            20.0,
            &mut gx,
            &mut gy,
            &mut scratch,
            par,
        );
        let stats = fields[0].penalty_grad_par(&model, &mut gx, &mut gy, par);
        let estats = electro[0].penalty_grad_par(&model, &mut gx, &mut gy, par);
        let bits: Vec<(u64, u64)> =
            gx.iter().zip(&gy).map(|(x, y)| (x.to_bits(), y.to_bits())).collect();
        (wl.to_bits(), stats.penalty.to_bits(), estats.penalty.to_bits(), bits)
    };

    for threads in [1usize, 2, 8] {
        // Fresh scope: no persistent pool attached.
        let fresh = sequence(&Parallelism::new(threads));

        // One pool, reused across repetitions of the whole sequence.
        let pooled = Parallelism::with_pool(threads);
        for rep in 0..3 {
            assert_eq!(
                fresh,
                sequence(&pooled),
                "pooled rep {rep} differs from fresh scope at {threads} threads"
            );
        }

        // Crash a job on the pool; the workers must recover and the next
        // runs must still be bitwise identical.
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rdp::geom::parallel::chunked_map(&pooled, 16, |i| {
                assert!(i != 11, "injected chunk panic");
                i
            })
        }));
        assert!(crashed.is_err(), "injected panic must propagate to the caller");
        assert_eq!(
            fresh,
            sequence(&pooled),
            "pool diverged after panic recovery at {threads} threads"
        );
    }
}
