//! Randomized property tests over the core invariants of the placement
//! stack.
//!
//! Cases are drawn from the workspace's own deterministic PRNG
//! ([`rdp::geom::rng::Rng`]) — no external test-harness crates, so the
//! suite builds offline. The `property-tests` feature multiplies the case
//! count for deeper sweeps.

use rdp::db::{DesignBuilder, NodeKind, Placement};
use rdp::geom::rng::Rng;
use rdp::geom::{Interval, Orient, Point, Rect};

/// Randomized cases per invariant (more with `--features property-tests`).
const CASES: u64 = if cfg!(feature = "property-tests") { 256 } else { 64 };

fn rng_for(tag: u64, case: u64) -> Rng {
    Rng::seed_from_u64(tag.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

fn random_positions(rng: &mut Rng, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen_range(0.0..980.0), rng.gen_range(0.0..990.0)))
        .collect()
}

#[test]
fn hpwl_is_invariant_under_pin_order() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let xs = random_positions(&mut rng, 6);
        let perm_seed = rng.gen_range(0u64..1000);
        // Build the same net twice with different pin orders.
        let build = |order: &[usize]| {
            let mut b = DesignBuilder::new("p");
            b.die(Rect::new(0.0, 0.0, 1000.0, 1000.0));
            b.add_row(0.0, 10.0, 1.0, 0.0, 1000);
            let ids: Vec<_> = (0..xs.len())
                .map(|i| b.add_node(format!("c{i}"), 2.0, 10.0, NodeKind::Movable).unwrap())
                .collect();
            let net = b.add_net("n", 1.0);
            for &k in order {
                b.add_pin(net, ids[k], Point::ORIGIN);
            }
            let d = b.finish().unwrap();
            let mut pl = Placement::new_centered(&d);
            for (i, &(x, y)) in xs.iter().enumerate() {
                pl.set_center(ids[i], Point::new(x, y));
            }
            rdp::db::hpwl::total_hpwl(&d, &pl)
        };
        let fwd: Vec<usize> = (0..xs.len()).collect();
        let mut shuffled = fwd.clone();
        // Simple deterministic shuffle from the seed.
        for i in (1..shuffled.len()).rev() {
            let j = (perm_seed as usize).wrapping_mul(31).wrapping_add(i * 7) % (i + 1);
            shuffled.swap(i, j);
        }
        assert!((build(&fwd) - build(&shuffled)).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn smooth_models_bracket_hpwl() {
    use rdp::place::model::{Model, ModelNet, ModelPin};
    use rdp::place::wirelength::{smooth_wl, WirelengthModel};
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let xs = random_positions(&mut rng, 5);
        let gamma = rng.gen_range(0.5..32.0);
        let n = xs.len();
        let model = Model::from_parts(
            xs.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            vec![(2.0, 10.0); n],
            vec![20.0; n],
            vec![false; n],
            vec![None; n],
            &[ModelNet {
                weight: 1.0,
                pins: (0..n).map(|i| ModelPin::movable(i, Point::ORIGIN)).collect(),
            }],
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
            vec![],
        );
        let hpwl = model.hpwl();
        let lse = smooth_wl(&model, WirelengthModel::Lse, gamma);
        let wa = smooth_wl(&model, WirelengthModel::Wa, gamma);
        assert!(lse >= hpwl - 1e-6, "case {case}: LSE {lse} < HPWL {hpwl}");
        assert!(wa <= hpwl + 1e-6, "case {case}: WA {wa} > HPWL {hpwl}");
        assert!(lse.is_finite() && wa.is_finite());
    }
}

#[test]
fn rect_intersection_is_commutative_and_contained() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let rect = |rng: &mut Rng| {
            let xl = rng.gen_range(0.0..100.0);
            let yl = rng.gen_range(0.0..100.0);
            Rect::new(xl, yl, xl + rng.gen_range(1.0..50.0), yl + rng.gen_range(1.0..50.0))
        };
        let ra = rect(&mut rng);
        let rb = rect(&mut rng);
        let i1 = ra.intersection(rb);
        let i2 = rb.intersection(ra);
        assert_eq!(i1, i2);
        assert!(i1.area() <= ra.area() + 1e-9);
        assert!(i1.area() <= rb.area() + 1e-9);
        assert!(ra.union(rb).area() >= ra.area().max(rb.area()) - 1e-9);
        if !i1.is_empty() {
            assert!(ra.contains_rect(i1) && rb.contains_rect(i1));
        }
    }
}

#[test]
fn orientation_transform_preserves_offset_norm() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let p = Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
        let o = Orient::ALL[rng.gen_range(0usize..8)];
        let t = rdp::geom::transform::transform_offset(p, o);
        assert!((t.norm() - p.norm()).abs() < 1e-9, "case {case}");
        // Four applications of rotate_ccw cycle back.
        let mut oo = o;
        for _ in 0..4 {
            oo = oo.rotated_ccw();
        }
        assert_eq!(oo, o);
    }
}

#[test]
fn interval_algebra() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let interval = |rng: &mut Rng| {
            let a = rng.gen_range(0.0..100.0);
            let b = rng.gen_range(0.0..100.0);
            Interval::new(a.min(b), a.max(b))
        };
        let ia = interval(&mut rng);
        let ib = interval(&mut rng);
        assert!((ia.overlap(ib) - ib.overlap(ia)).abs() < 1e-12, "case {case}");
        assert!(ia.overlap(ib) <= ia.length() + 1e-12);
        assert!(ia.hull(ib).length() + 1e-12 >= ia.length().max(ib.length()));
    }
}

#[test]
fn mst_length_at_most_chain_and_spans() {
    use rdp::route::topology::{mst_segments, total_length};
    use rdp::route::GCell;
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let n = rng.gen_range(2usize..12);
        let mut cells: Vec<GCell> = (0..n)
            .map(|_| GCell::new(rng.gen_range(0u32..64), rng.gen_range(0u32..64)))
            .collect();
        cells.sort();
        cells.dedup();
        if cells.len() < 2 {
            continue;
        }
        let segs = mst_segments(&cells);
        assert_eq!(segs.len(), cells.len() - 1);
        // MST no longer than visiting cells in sorted order.
        let chain: u32 = cells.windows(2).map(|w| w[0].manhattan(w[1])).sum();
        assert!(total_length(&segs) <= chain, "case {case}");
    }
}

#[test]
fn abacus_packs_any_assignment_legally() {
    use rdp::place::legalize::{pack_segment, Segment};
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let n = rng.gen_range(1usize..12);
        let desired: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..90.0)).collect();
        let widths: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..5)).collect();
        let mut b = DesignBuilder::new("ab");
        b.die(Rect::new(0.0, 0.0, 100.0, 10.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 100);
        let ids: Vec<_> = (0..n)
            .map(|i| {
                b.add_node(format!("c{i}"), f64::from(widths[i]), 10.0, NodeKind::Movable)
                    .unwrap()
            })
            .collect();
        let total_w: f64 = (0..n).map(|i| f64::from(widths[i])).sum();
        if total_w > 100.0 {
            continue;
        }
        let net = b.add_net("n", 1.0);
        b.add_pin(net, ids[0], Point::ORIGIN);
        b.add_pin(net, ids[n.min(2) - 1], Point::ORIGIN);
        let d = b.finish().unwrap();
        let mut pl = Placement::new_centered(&d);
        for (i, &x) in desired.iter().enumerate() {
            pl.set_lower_left(&d, ids[i], Point::new(x, 0.0));
        }
        let mut seg = Segment {
            row: 0,
            interval: Interval::new(0.0, 100.0),
            region: None,
            used: total_w,
            cells: ids.clone(),
        };
        pack_segment(&d, &mut pl, &mut seg);
        // Legal: inside segment, site aligned, no overlap.
        let mut rects: Vec<Rect> = ids.iter().map(|&id| pl.rect(&d, id)).collect();
        rects.sort_by(|a, b| a.xl.partial_cmp(&b.xl).unwrap());
        for r in &rects {
            assert!(r.xl >= -1e-9 && r.xh <= 100.0 + 1e-9, "case {case}: outside: {r}");
            assert!((r.xl - r.xl.round()).abs() < 1e-9, "case {case}: off-site: {r}");
        }
        for w in rects.windows(2) {
            assert!(w[0].xh <= w[1].xl + 1e-9, "case {case}: overlap: {} {}", w[0], w[1]);
        }
    }
}

#[test]
fn bell_density_conserves_mass_anywhere() {
    use rdp::place::density::{BinGrid, DensityField};
    use rdp::place::model::Model;
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let x = rng.gen_range(20.0..80.0);
        let y = rng.gen_range(20.0..80.0);
        let w = rng.gen_range(1.0..20.0);
        let h = rng.gen_range(5.0..20.0);
        let model = Model::from_parts(
            vec![Point::new(x, y)],
            vec![(w, h)],
            vec![w * h],
            vec![false],
            vec![None],
            &[],
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![],
        );
        let mut field = DensityField::new(BinGrid::new(model.die, 20, 20, 1.0), vec![0]);
        let mut gx = vec![0.0; 1];
        let mut gy = vec![0.0; 1];
        let stats = field.penalty_grad(&model, &mut gx, &mut gy);
        assert!(stats.penalty >= 0.0);
        assert!(gx[0].is_finite() && gy[0].is_finite(), "case {case}");
    }
}

/// Band-parallel legalization must be a pure function of the input: any
/// thread count (including 1) produces bitwise-identical positions and
/// displacement totals, on designs whose movable macros straddle the
/// 32-row band boundaries.
#[test]
fn band_parallel_legalization_matches_serial() {
    use rdp::gen::{generate, GeneratorConfig};
    use rdp::geom::parallel::Parallelism;
    use rdp::place::legalize::legalize_with_displacement_par;

    let cases = if cfg!(feature = "property-tests") { 6 } else { 3 };
    for case in 0..cases {
        let config = GeneratorConfig {
            num_cells: 5_000,
            num_macros: 6,
            ..GeneratorConfig::small(format!("blg{case}"), 40 + case)
        };
        let bench = generate(&config).unwrap();
        let design = &bench.design;
        assert!(
            design.rows().len() > 32,
            "case {case}: need >1 band, got {} rows",
            design.rows().len()
        );
        let mut rng = rng_for(9, case);
        let mut scattered = bench.placement.clone();
        let die = design.die();
        for id in design.movable_ids() {
            let (w, h) = scattered.dims(design, id);
            let x = rng.gen_range(die.xl + w / 2.0..die.xh - w / 2.0);
            let y = rng.gen_range(die.yl + h / 2.0..die.yh - h / 2.0);
            scattered.set_center(id, Point::new(x, y));
        }
        // Park the movable macros across the first band boundary (row 32)
        // so band partitioning sees macros overlapping multiple bands.
        let boundary_y = design.rows()[32.min(design.rows().len() - 1)].y();
        for (k, id) in design.macro_ids().enumerate() {
            if design.node(id).kind() == rdp::db::NodeKind::Movable {
                let (w, h) = scattered.dims(design, id);
                let x = (die.xl + w / 2.0 + 40.0 * k as f64).min(die.xh - w / 2.0);
                let y = boundary_y.clamp(die.yl + h / 2.0, die.yh - h / 2.0);
                scattered.set_center(id, Point::new(x, y));
            }
        }

        let run = |threads: usize| {
            let mut par = Parallelism::new(threads);
            par.ensure_pool();
            let mut pl = scattered.clone();
            let stats = legalize_with_displacement_par(design, &mut pl, &par);
            (stats, pl)
        };
        let (stats1, pl1) = run(1);
        assert_eq!(stats1.failed, 0, "case {case}");
        for (stats, pl) in [run(2), run(8)] {
            assert_eq!(stats.failed, stats1.failed, "case {case}");
            assert_eq!(
                stats.total_displacement.to_bits(),
                stats1.total_displacement.to_bits(),
                "case {case}: displacement differs across thread counts"
            );
            for id in design.movable_ids() {
                let a = pl1.center(id);
                let b = pl.center(id);
                assert_eq!(
                    (a.x.to_bits(), a.y.to_bits()),
                    (b.x.to_bits(), b.y.to_bits()),
                    "case {case}: node {id:?} moved differently"
                );
            }
        }
    }
}
