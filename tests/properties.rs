//! Property-based tests (proptest) over the core invariants of the
//! placement stack.

use proptest::prelude::*;
use rdp::db::{DesignBuilder, NodeKind, Placement};
use rdp::geom::{Interval, Orient, Point, Rect};

/// Strategy: a small random legal-ish design with `n` cells in one row
/// block and a few random nets.
fn arb_positions(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..980.0, 0.0f64..990.0), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hpwl_is_invariant_under_pin_order(xs in arb_positions(6), perm_seed in 0u64..1000) {
        // Build the same net twice with different pin orders.
        let build = |order: &[usize]| {
            let mut b = DesignBuilder::new("p");
            b.die(Rect::new(0.0, 0.0, 1000.0, 1000.0));
            b.add_row(0.0, 10.0, 1.0, 0.0, 1000);
            let ids: Vec<_> = (0..xs.len())
                .map(|i| b.add_node(format!("c{i}"), 2.0, 10.0, NodeKind::Movable).unwrap())
                .collect();
            let net = b.add_net("n", 1.0);
            for &k in order {
                b.add_pin(net, ids[k], Point::ORIGIN);
            }
            let d = b.finish().unwrap();
            let mut pl = Placement::new_centered(&d);
            for (i, &(x, y)) in xs.iter().enumerate() {
                pl.set_center(ids[i], Point::new(x, y));
            }
            rdp::db::hpwl::total_hpwl(&d, &pl)
        };
        let fwd: Vec<usize> = (0..xs.len()).collect();
        let mut shuffled = fwd.clone();
        // Simple deterministic shuffle from the seed.
        for i in (1..shuffled.len()).rev() {
            let j = (perm_seed as usize).wrapping_mul(31).wrapping_add(i * 7) % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert!((build(&fwd) - build(&shuffled)).abs() < 1e-9);
    }

    #[test]
    fn smooth_models_bracket_hpwl(xs in arb_positions(5), gamma in 0.5f64..32.0) {
        use rdp::place::model::{Model, ModelNet, ModelPin};
        use rdp::place::wirelength::{smooth_wl, WirelengthModel};
        let n = xs.len();
        let model = Model {
            pos: xs.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            size: vec![(2.0, 10.0); n],
            area: vec![20.0; n],
            is_macro: vec![false; n],
            region: vec![None; n],
            nets: vec![ModelNet {
                weight: 1.0,
                pins: (0..n).map(|i| ModelPin::movable(i, Point::ORIGIN)).collect(),
            }],
            die: Rect::new(0.0, 0.0, 1000.0, 1000.0),
            node_of: vec![],
        };
        let hpwl = model.hpwl();
        let lse = smooth_wl(&model, WirelengthModel::Lse, gamma);
        let wa = smooth_wl(&model, WirelengthModel::Wa, gamma);
        prop_assert!(lse >= hpwl - 1e-6, "LSE {lse} < HPWL {hpwl}");
        prop_assert!(wa <= hpwl + 1e-6, "WA {wa} > HPWL {hpwl}");
        prop_assert!(lse.is_finite() && wa.is_finite());
    }

    #[test]
    fn rect_intersection_is_commutative_and_contained(
        a in (0.0f64..100.0, 0.0f64..100.0, 1.0f64..50.0, 1.0f64..50.0),
        b in (0.0f64..100.0, 0.0f64..100.0, 1.0f64..50.0, 1.0f64..50.0),
    ) {
        let ra = Rect::new(a.0, a.1, a.0 + a.2, a.1 + a.3);
        let rb = Rect::new(b.0, b.1, b.0 + b.2, b.1 + b.3);
        let i1 = ra.intersection(rb);
        let i2 = rb.intersection(ra);
        prop_assert_eq!(i1, i2);
        prop_assert!(i1.area() <= ra.area() + 1e-9);
        prop_assert!(i1.area() <= rb.area() + 1e-9);
        prop_assert!(ra.union(rb).area() >= ra.area().max(rb.area()) - 1e-9);
        if !i1.is_empty() {
            prop_assert!(ra.contains_rect(i1) && rb.contains_rect(i1));
        }
    }

    #[test]
    fn orientation_transform_preserves_offset_norm(
        dx in -50.0f64..50.0,
        dy in -50.0f64..50.0,
        which in 0usize..8,
    ) {
        let o = Orient::ALL[which];
        let p = Point::new(dx, dy);
        let t = rdp::geom::transform::transform_offset(p, o);
        prop_assert!((t.norm() - p.norm()).abs() < 1e-9);
        // Eight applications of rotate_ccw cycle back.
        let mut oo = o;
        for _ in 0..4 { oo = oo.rotated_ccw(); }
        prop_assert_eq!(oo, o);
    }

    #[test]
    fn interval_algebra(
        a in (0.0f64..100.0, 0.0f64..100.0),
        b in (0.0f64..100.0, 0.0f64..100.0),
    ) {
        let ia = Interval::new(a.0.min(a.1), a.0.max(a.1));
        let ib = Interval::new(b.0.min(b.1), b.0.max(b.1));
        prop_assert!((ia.overlap(ib) - ib.overlap(ia)).abs() < 1e-12);
        prop_assert!(ia.overlap(ib) <= ia.length() + 1e-12);
        prop_assert!(ia.hull(ib).length() + 1e-12 >= ia.length().max(ib.length()));
    }

    #[test]
    fn mst_length_at_most_chain_and_spans(pts in proptest::collection::vec((0u32..64, 0u32..64), 2..12)) {
        use rdp::route::topology::{mst_segments, total_length};
        use rdp::route::GCell;
        let mut cells: Vec<GCell> = pts.iter().map(|&(x, y)| GCell::new(x, y)).collect();
        cells.sort();
        cells.dedup();
        prop_assume!(cells.len() >= 2);
        let segs = mst_segments(&cells);
        prop_assert_eq!(segs.len(), cells.len() - 1);
        // MST no longer than visiting cells in sorted order.
        let chain: u32 = cells.windows(2).map(|w| w[0].manhattan(w[1])).sum();
        prop_assert!(total_length(&segs) <= chain);
    }

    #[test]
    fn abacus_packs_any_assignment_legally(
        desired in proptest::collection::vec(0.0f64..90.0, 1..12),
        widths in proptest::collection::vec(1u32..5, 12),
    ) {
        use rdp::place::legalize::{pack_segment, Segment};
        let n = desired.len();
        let mut b = DesignBuilder::new("ab");
        b.die(Rect::new(0.0, 0.0, 100.0, 10.0));
        b.add_row(0.0, 10.0, 1.0, 0.0, 100);
        let ids: Vec<_> = (0..n)
            .map(|i| {
                b.add_node(format!("c{i}"), f64::from(widths[i]), 10.0, NodeKind::Movable)
                    .unwrap()
            })
            .collect();
        let total_w: f64 = (0..n).map(|i| f64::from(widths[i])).sum();
        prop_assume!(total_w <= 100.0);
        let net = b.add_net("n", 1.0);
        b.add_pin(net, ids[0], Point::ORIGIN);
        b.add_pin(net, ids[n.min(2) - 1], Point::ORIGIN);
        let d = b.finish().unwrap();
        let mut pl = Placement::new_centered(&d);
        for (i, &x) in desired.iter().enumerate() {
            pl.set_lower_left(&d, ids[i], Point::new(x, 0.0));
        }
        let mut seg = Segment {
            row: 0,
            interval: Interval::new(0.0, 100.0),
            region: None,
            used: total_w,
            cells: ids.clone(),
        };
        pack_segment(&d, &mut pl, &mut seg);
        // Legal: inside segment, site aligned, no overlap.
        let mut rects: Vec<Rect> = ids.iter().map(|&id| pl.rect(&d, id)).collect();
        rects.sort_by(|a, b| a.xl.partial_cmp(&b.xl).unwrap());
        for r in &rects {
            prop_assert!(r.xl >= -1e-9 && r.xh <= 100.0 + 1e-9, "outside: {r}");
            prop_assert!((r.xl - r.xl.round()).abs() < 1e-9, "off-site: {r}");
        }
        for w in rects.windows(2) {
            prop_assert!(w[0].xh <= w[1].xl + 1e-9, "overlap: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn bell_density_conserves_mass_anywhere(
        x in 20.0f64..80.0,
        y in 20.0f64..80.0,
        w in 1.0f64..20.0,
        h in 5.0f64..20.0,
    ) {
        use rdp::place::density::{BinGrid, DensityField};
        use rdp::place::model::{Model, ModelNet};
        let model = Model {
            pos: vec![Point::new(x, y)],
            size: vec![(w, h)],
            area: vec![w * h],
            is_macro: vec![false],
            region: vec![None],
            nets: Vec::<ModelNet>::new(),
            die: Rect::new(0.0, 0.0, 100.0, 100.0),
            node_of: vec![],
        };
        let mut field = DensityField {
            grid: BinGrid::new(model.die, 20, 20, 1.0),
            members: vec![0],
        };
        let mut grad = vec![Point::ORIGIN; 1];
        let stats = field.penalty_grad(&model, &mut grad);
        prop_assert!(stats.penalty >= 0.0);
        prop_assert!(grad[0].is_finite());
    }
}
