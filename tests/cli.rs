//! Integration tests for the `rdp` command-line tool, driving the real
//! binary end-to-end: generate → stats → place → check → score → route.

use std::path::PathBuf;
use std::process::Command;

fn rdp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdp"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdp_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_flow() {
    let dir = tmp("flow");
    let bench = dir.join("bench");
    let sol = dir.join("sol");

    let out = rdp()
        .args(["generate", "--preset", "tiny", "--name", "cli", "--seed", "7", "--out"])
        .arg(&bench)
        .output()
        .unwrap();
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(bench.join("cli.aux").exists());

    let aux = bench.join("cli.aux");
    let out = rdp().args(["stats", "--aux"]).arg(&aux).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cells"), "stats output: {stdout}");

    let out = rdp()
        .args(["place", "--aux"])
        .arg(&aux)
        .args(["--out"])
        .arg(&sol)
        .arg("--fast")
        .output()
        .unwrap();
    assert!(out.status.success(), "place failed: {}", String::from_utf8_lossy(&out.stderr));
    let sol_aux = sol.join("cli.aux");
    assert!(sol_aux.exists());

    let out = rdp().args(["check", "--aux"]).arg(&sol_aux).output().unwrap();
    assert!(out.status.success(), "check failed: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("legal"));

    let out = rdp().args(["score", "--aux"]).arg(&sol_aux).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RC") && stdout.contains("scaled HPWL"), "score output: {stdout}");

    let out = rdp().args(["route", "--aux"]).arg(&sol_aux).arg("--map").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("routed") && stdout.contains("legend"), "route output: {stdout}");
}

#[test]
fn score_accepts_pl_override() {
    let dir = tmp("plov");
    let bench = dir.join("bench");
    rdp()
        .args(["generate", "--preset", "tiny", "--name", "ov", "--seed", "9", "--out"])
        .arg(&bench)
        .output()
        .unwrap();
    // Score with the benchmark's own .pl passed explicitly.
    let out = rdp()
        .args(["score", "--aux"])
        .arg(bench.join("ov.aux"))
        .args(["--pl"])
        .arg(bench.join("ov.pl"))
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn unknown_command_exits_with_usage() {
    let out = rdp().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_required_flag_is_an_error() {
    let out = rdp().args(["place", "--aux", "/nonexistent.aux"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --out"));
}

#[test]
fn serve_runs_a_demo_batch_to_done() {
    let dir = tmp("serve");
    let spool = dir.join("spool");
    let out = rdp()
        .args(["serve", "--demo", "2", "--workers", "2", "--preset", "tiny", "--spool"])
        .arg(&spool)
        .output()
        .unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("job-000001") && stdout.contains("job-000002"), "table: {stdout}");
    assert!(stdout.matches("done").count() >= 2, "table: {stdout}");
    // All jobs terminal and clean: the spool must be empty.
    let residue = std::fs::read_dir(&spool).map(|d| d.count()).unwrap_or(0);
    assert_eq!(residue, 0, "spool should hold no unfinished jobs");
}

#[test]
fn serve_reports_failed_jobs_with_nonzero_exit() {
    // A zero deadline expires before any attempt starts.
    let out = rdp()
        .args(["serve", "--demo", "1", "--deadline", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "expired deadline must fail the batch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("failed"), "table: {stdout}");
    assert!(stdout.contains("deadline"), "table: {stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("1 job(s) failed"));
}

#[test]
fn place_accepts_the_estimator_flag() {
    let dir = tmp("est");
    let bench = dir.join("bench");
    rdp()
        .args(["generate", "--preset", "tiny", "--name", "es", "--seed", "21", "--out"])
        .arg(&bench)
        .output()
        .unwrap();
    let aux = bench.join("es.aux");
    let out = rdp()
        .args(["place", "--aux"])
        .arg(&aux)
        .args(["--out"])
        .arg(dir.join("sol"))
        .args(["--fast", "--estimator", "learned"])
        .output()
        .unwrap();
    assert!(out.status.success(), "place failed: {}", String::from_utf8_lossy(&out.stderr));

    // A bad tier name is rejected with the accepted spellings.
    let out = rdp()
        .args(["place", "--aux"])
        .arg(&aux)
        .args(["--out"])
        .arg(dir.join("sol2"))
        .args(["--estimator", "psychic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --estimator") && stderr.contains("auto"), "stderr: {stderr}");
}

#[test]
fn train_estimator_writes_a_parseable_weight_file() {
    let dir = tmp("train");
    let weights = dir.join("weights.txt");
    let out = rdp()
        .args(["train-estimator", "--designs", "2", "--preset", "tiny", "--holdout", "1", "--out"])
        .arg(&weights)
        .output()
        .unwrap();
    assert!(out.status.success(), "trainer failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&weights).unwrap();
    assert!(text.starts_with("rdp-estimator v1"), "header: {text}");
    assert!(text.lines().any(|l| l == "end"), "terminator: {text}");

    // --check against the compiled-in weights must fail for a training
    // run with non-default parameters (different weights), and must not
    // touch the output file.
    let before = std::fs::metadata(&weights).unwrap().modified().unwrap();
    let out = rdp()
        .args(["train-estimator", "--designs", "1", "--preset", "tiny", "--check"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "non-default training must mismatch the builtin weights");
    assert!(String::from_utf8_lossy(&out.stderr).contains("differ"));
    assert_eq!(std::fs::metadata(&weights).unwrap().modified().unwrap(), before);
}

#[test]
fn check_fails_on_illegal_placement() {
    // The generated initial placement piles everything at the die center:
    // definitely illegal.
    let dir = tmp("illegal");
    let bench = dir.join("bench");
    rdp()
        .args(["generate", "--preset", "tiny", "--name", "il", "--seed", "11", "--out"])
        .arg(&bench)
        .output()
        .unwrap();
    let out = rdp().args(["check", "--aux"]).arg(bench.join("il.aux")).output().unwrap();
    assert!(!out.status.success(), "center-pile placement must fail the check");
    assert!(String::from_utf8_lossy(&out.stderr).contains("violations"));
}
