//! End-to-end integration tests spanning all crates: generate → place →
//! legalize → route → score, plus persistence through Bookshelf.

use rdp::db::validate::check_legal;
use rdp::eval::{run_flow, score_placement};
use rdp::gen::{generate, GeneratorConfig};
use rdp::place::{PlaceOptions, Placer};

#[test]
fn generate_place_route_score_pipeline() {
    let bench = generate(&GeneratorConfig::tiny("it1", 1)).unwrap();
    let out = run_flow(&bench, PlaceOptions::fast()).unwrap();
    assert!(out.legality.is_legal(), "violations: {:?}", out.legality.violations);
    assert!(out.score.hpwl > 0.0);
    assert!(out.score.scaled_hpwl >= out.score.hpwl);
    assert!(out.score.congestion.total_usage > 0.0, "router saw no demand");
}

#[test]
fn placement_improves_both_hpwl_and_congestion_over_scatter() {
    let mut cfg = GeneratorConfig::tiny("it2", 2);
    cfg.route.tracks_per_edge_h = 20.0;
    cfg.route.tracks_per_edge_v = 20.0;
    let bench = generate(&cfg).unwrap();

    // Null model: uniform random scatter.
    let mut scatter = bench.placement.clone();
    let mut rng = rdp::geom::rng::Rng::seed_from_u64(3);
    let die = bench.design.die();
    for id in bench.design.movable_ids() {
        scatter.set_center(
            id,
            rdp::geom::Point::new(rng.gen_range(die.xl..die.xh), rng.gen_range(die.yl..die.yh)),
        );
    }
    let scatter_score = score_placement(&bench.design, &scatter);

    let out = run_flow(&bench, PlaceOptions::fast()).unwrap();
    assert!(
        out.score.hpwl < scatter_score.hpwl,
        "placed HPWL {} vs scatter {}",
        out.score.hpwl,
        scatter_score.hpwl
    );
    assert!(
        out.score.scaled_hpwl < scatter_score.scaled_hpwl,
        "placed scaled {} vs scatter {}",
        out.score.scaled_hpwl,
        scatter_score.scaled_hpwl
    );
}

#[test]
fn hierarchical_design_flows_end_to_end() {
    let bench = generate(&GeneratorConfig::hierarchical("it3", 3, 2)).unwrap();
    let out = run_flow(&bench, PlaceOptions::fast()).unwrap();
    assert!(out.legality.is_legal());
    assert_eq!(out.legality.fence_violations, 0);
    // Every fenced cell's final center is inside its fence.
    for id in bench.design.node_ids() {
        if let Some(r) = bench.design.node(id).region() {
            let region = bench.design.region(r);
            assert!(
                region.contains(out.place.placement.center(id)),
                "cell {} outside fence {}",
                bench.design.node(id).name(),
                region.name()
            );
        }
    }
}

#[test]
fn placed_design_survives_bookshelf_round_trip() {
    let bench = generate(&GeneratorConfig::tiny("it4", 4)).unwrap();
    let result = Placer::new(&bench.design, PlaceOptions::fast())
        .with_initial(bench.placement.clone())
        .run()
        .unwrap();
    let dir = std::env::temp_dir().join("rdp_it4_rt");
    rdp::db::bookshelf::write_design(&bench.design, &result.placement, &dir).unwrap();
    let (d2, pl2) = rdp::db::bookshelf::read_design(dir.join("it4.aux")).unwrap();
    // HPWL and legality preserved through the file format.
    let h1 = rdp::db::hpwl::total_hpwl(&bench.design, &result.placement);
    let h2 = rdp::db::hpwl::total_hpwl(&d2, &pl2);
    assert!((h1 - h2).abs() / h1 < 1e-6, "HPWL drifted: {h1} vs {h2}");
    let report = check_legal(&d2, &pl2, 10);
    assert!(report.is_legal(), "round-trip broke legality: {:?}", report.violations);
    // Scoring the reloaded design gives identical congestion.
    let s1 = score_placement(&bench.design, &result.placement);
    let s2 = score_placement(&d2, &pl2);
    assert!((s1.rc - s2.rc).abs() < 1e-6);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let bench = generate(&GeneratorConfig::tiny("it5", 5)).unwrap();
    let a = run_flow(&bench, PlaceOptions::fast()).unwrap();
    let b = run_flow(&bench, PlaceOptions::fast()).unwrap();
    assert_eq!(a.score.hpwl, b.score.hpwl);
    assert_eq!(a.score.rc, b.score.rc);
    assert_eq!(a.score.scaled_hpwl, b.score.scaled_hpwl);
}

#[test]
fn all_baseline_configurations_complete() {
    let bench = generate(&GeneratorConfig::hierarchical("it6", 6, 2)).unwrap();
    for options in [
        PlaceOptions::fast(),
        PlaceOptions::fast().wirelength_driven(),
        PlaceOptions::fast().fence_blind(),
        PlaceOptions::fast().flat(),
        PlaceOptions::fast().without_rotation(),
        PlaceOptions::fast().with_wirelength(rdp::place::WirelengthModel::Lse),
        PlaceOptions::fast().with_net_weighting_only(),
    ] {
        let out = run_flow(&bench, options.clone()).unwrap();
        assert!(
            out.legality.is_legal(),
            "config {options:?} produced illegal placement: {:?}",
            out.legality.violations
        );
    }
}
